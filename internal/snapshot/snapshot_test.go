package snapshot_test

import (
	"reflect"
	"slices"
	"strings"
	"sync"
	"testing"

	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
	"mapit/internal/trace"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

// testWorld runs a small multi-monitor corpus through the engine with
// monitor tracking on, returning the result and the evidence.
func testWorld(t testing.TB) (*core.Result, *core.Evidence) {
	t.Helper()
	table := bgp.EmptyTable()
	for _, e := range []struct {
		p   string
		asn inet.ASN
	}{
		{"109.105.0.0/16", 2603},
		{"198.71.0.0/16", 11537},
		{"64.57.0.0/16", 11537},
		{"199.109.0.0/16", 3754},
	} {
		table.Add(inet.MustParsePrefix(e.p), e.asn)
	}
	traces := []trace.Trace{
		trace.NewTrace("ark1", ip("199.109.200.1"), ip("109.105.98.10"), ip("198.71.45.2")),
		trace.NewTrace("ark1", ip("199.109.200.2"), ip("109.105.98.10"), ip("198.71.46.180")),
		trace.NewTrace("ark1", ip("199.109.200.3"), ip("109.105.98.10"), ip("199.109.5.1")),
		trace.NewTrace("ark2", ip("199.109.200.4"), ip("64.57.28.1"), ip("199.109.5.1")),
		trace.NewTrace("ark3", ip("109.105.200.1"), ip("109.105.98.9"), ip("109.105.80.1")),
	}
	c := core.NewCollector()
	c.TrackMonitors()
	for _, tr := range traces {
		c.Add(tr)
	}
	ev := c.Evidence()
	res, err := core.RunEvidence(ev, core.Config{IP2AS: table, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inferences) == 0 {
		t.Fatal("test world produced no inferences")
	}
	return res, ev
}

// rowsSlice materialises a view for comparison.
func rowsSlice(r snapshot.Rows) []core.Inference {
	out := make([]core.Inference, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		out = append(out, r.At(i))
	}
	return out
}

func TestLookupMatchesByAddr(t *testing.T) {
	res, ev := testWorld(t)
	s := snapshot.Build(res, ev)
	if s.Len() != len(res.Inferences) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(res.Inferences))
	}
	seen := map[inet.Addr]bool{}
	for _, inf := range res.Inferences {
		seen[inf.Addr] = true
	}
	for a := range seen {
		got, want := rowsSlice(s.Lookup(a)), res.ByAddr(a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v) = %+v, want %+v", a, got, want)
		}
		// Near misses must not alias into the span.
		for _, miss := range []inet.Addr{a - 1, a + 1} {
			if !seen[miss] && s.Lookup(miss).Len() != 0 {
				t.Fatalf("Lookup(%v) hit on an uninferred address", miss)
			}
		}
	}
	if s.Lookup(0).Len() != 0 || s.Lookup(^inet.Addr(0)).Len() != 0 {
		t.Fatal("extreme addresses hit")
	}
}

func TestHighConfidenceMatchesResult(t *testing.T) {
	res, ev := testWorld(t)
	s := snapshot.Build(res, ev)
	if got, want := s.HighConfidence(), res.HighConfidence(); !slices.Equal(got, want) {
		t.Fatalf("HighConfidence diverges:\n got  %+v\n want %+v", got, want)
	}
}

func TestLinksMatchResult(t *testing.T) {
	res, ev := testWorld(t)
	s := snapshot.Build(res, ev)
	ref := res.Links()
	if s.LinkCount() != len(ref) {
		t.Fatalf("LinkCount = %d, want %d", s.LinkCount(), len(ref))
	}
	for _, l := range ref {
		for _, order := range [][2]inet.ASN{{l.A, l.B}, {l.B, l.A}} {
			v := s.Links(order[0], order[1])
			if v.Len() != len(l.Addrs) {
				t.Fatalf("Links(%v,%v).Len = %d, want %d", order[0], order[1], v.Len(), len(l.Addrs))
			}
			for i, want := range l.Addrs {
				if got := v.Addr(i); got != want {
					t.Fatalf("Links(%v,%v).Addr(%d) = %v, want %v", order[0], order[1], i, got, want)
				}
				inf := v.At(i)
				a, b := inf.Link()
				if a != l.A || b != l.B || inf.Addr != want {
					t.Fatalf("Links(%v,%v).At(%d) = %+v", order[0], order[1], i, inf)
				}
			}
		}
	}
	if s.Links(64496, 64497).Len() != 0 {
		t.Fatal("unknown pair resolved")
	}
	// EachLink walks the same aggregation in the same order.
	i := 0
	s.EachLink(func(a, b inet.ASN, l snapshot.Link) bool {
		if a != ref[i].A || b != ref[i].B || l.Len() != len(ref[i].Addrs) {
			t.Fatalf("EachLink[%d] = (%v,%v,%d), want (%v,%v,%d)",
				i, a, b, l.Len(), ref[i].A, ref[i].B, len(ref[i].Addrs))
		}
		i++
		return true
	})
	if i != len(ref) {
		t.Fatalf("EachLink visited %d pairs, want %d", i, len(ref))
	}
}

func TestMonitorEvidence(t *testing.T) {
	res, ev := testWorld(t)
	s := snapshot.Build(res, ev)
	if s.MonitorCount() != len(ev.Monitors) {
		t.Fatalf("MonitorCount = %d, want %d", s.MonitorCount(), len(ev.Monitors))
	}
	for i, want := range ev.Monitors {
		if name := s.MonitorName(i); name != want.Monitor {
			t.Fatalf("MonitorName(%d) = %q, want %q", i, name, want.Monitor)
		}
		m, ok := s.MonitorEvidence(want.Monitor)
		if !ok {
			t.Fatalf("MonitorEvidence(%q) missing", want.Monitor)
		}
		if m.Traces() != want.Traces || m.Len() != len(want.Adjacencies) {
			t.Fatalf("MonitorEvidence(%q) = (%d traces, %d adjs), want (%d, %d)",
				want.Monitor, m.Traces(), m.Len(), want.Traces, len(want.Adjacencies))
		}
		for j := range want.Adjacencies {
			if m.At(j) != want.Adjacencies[j] {
				t.Fatalf("MonitorEvidence(%q).At(%d) = %v, want %v",
					want.Monitor, j, m.At(j), want.Adjacencies[j])
			}
		}
	}
	if _, ok := s.MonitorEvidence("no-such-monitor"); ok {
		t.Fatal("unknown monitor resolved")
	}
}

// A snapshot built without evidence answers address and link queries and
// reports an empty monitor index.
func TestBuildWithoutEvidence(t *testing.T) {
	res, _ := testWorld(t)
	s := snapshot.Build(res, nil)
	if s.Len() != len(res.Inferences) {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MonitorCount() != 0 {
		t.Fatalf("MonitorCount = %d", s.MonitorCount())
	}
	if _, ok := s.MonitorEvidence("ark1"); ok {
		t.Fatal("monitor resolved without evidence")
	}
}

// An empty result compiles into a snapshot that answers (emptily)
// rather than panicking.
func TestBuildEmpty(t *testing.T) {
	s := snapshot.Build(&core.Result{}, nil)
	if s.Len() != 0 || s.AddrCount() != 0 || s.LinkCount() != 0 {
		t.Fatalf("empty snapshot not empty: %d/%d/%d", s.Len(), s.AddrCount(), s.LinkCount())
	}
	if s.Lookup(ip("10.0.0.1")).Len() != 0 {
		t.Fatal("empty snapshot resolved an address")
	}
	if len(s.HighConfidence()) != 0 {
		t.Fatal("empty snapshot has high-confidence records")
	}
}

// The read hot paths must not allocate: address lookup (including row
// materialisation), AS-pair lookup, and monitor lookup.
func TestZeroAllocLookups(t *testing.T) {
	res, ev := testWorld(t)
	s := snapshot.Build(res, ev)
	addrs := make([]inet.Addr, 0, len(res.Inferences)+2)
	for _, inf := range res.Inferences {
		addrs = append(addrs, inf.Addr)
	}
	addrs = append(addrs, ip("8.8.8.8"), ip("203.0.113.7")) // misses
	links := res.Links()

	var sink int
	if n := testing.AllocsPerRun(100, func() {
		for _, a := range addrs {
			rows := s.Lookup(a)
			for i := 0; i < rows.Len(); i++ {
				sink += int(rows.At(i).Connected)
			}
		}
	}); n != 0 {
		t.Errorf("Lookup allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, l := range links {
			v := s.Links(l.A, l.B)
			for i := 0; i < v.Len(); i++ {
				sink += int(v.Addr(i))
			}
		}
	}); n != 0 {
		t.Errorf("Links allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, m := range ev.Monitors {
			v, _ := s.MonitorEvidence(m.Monitor)
			for i := 0; i < v.Len(); i++ {
				sink += int(v.At(i).First)
			}
		}
	}); n != 0 {
		t.Errorf("MonitorEvidence allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink += len(s.HighConfidence())
	}); n != 0 {
		t.Errorf("HighConfidence allocates %v per run", n)
	}
	_ = sink
}

// Build must not depend on the result being pre-sorted: a shuffled
// inference list compiles to the same per-address answers (in the
// shuffled list's own record order).
func TestBuildUnsortedResult(t *testing.T) {
	res, ev := testWorld(t)
	shuffled := &core.Result{Inferences: slices.Clone(res.Inferences)}
	// Deterministic scramble: reverse.
	slices.Reverse(shuffled.Inferences)
	s := snapshot.Build(shuffled, ev)
	for _, inf := range res.Inferences {
		got, want := rowsSlice(s.Lookup(inf.Addr)), shuffled.ByAddr(inf.Addr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v) on shuffled input = %+v, want %+v", inf.Addr, got, want)
		}
	}
}

// Concurrent readers across Handle.Swap: run under -race. Two distinct
// snapshots alternate in the handle while readers hammer every query
// family; each loaded snapshot must stay internally consistent (the
// sentinel address resolves iff the snapshot is the one that has it).
func TestHandleSwapRace(t *testing.T) {
	res, ev := testWorld(t)
	full := snapshot.Build(res, ev)

	// A second, disjoint world: one sentinel inference nothing in the
	// full world has.
	sentinel := ip("203.0.113.9")
	small := snapshot.Build(&core.Result{Inferences: []core.Inference{{
		Addr: sentinel, Dir: core.Forward, Local: 64496, Connected: 64497,
	}}}, nil)

	var h snapshot.Handle
	h.Swap(full)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Load()
				if s == nil {
					continue
				}
				hasSentinel := s.Lookup(sentinel).Len() == 1
				if hasSentinel != (s.Len() == 1) {
					t.Errorf("torn snapshot: sentinel=%v len=%d", hasSentinel, s.Len())
					return
				}
				if !hasSentinel {
					if got := len(s.HighConfidence()); got != len(res.HighConfidence()) {
						t.Errorf("full snapshot lost high-confidence rows: %d", got)
						return
					}
					if _, ok := s.MonitorEvidence("ark1"); !ok {
						t.Error("full snapshot lost monitor index")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			h.Swap(small)
		} else {
			h.Swap(full)
		}
	}
	close(stop)
	wg.Wait()
	if prev := h.Swap(nil); prev == nil {
		t.Fatal("handle lost its snapshot")
	}
	if h.Load() != nil {
		t.Fatal("unpublish did not take")
	}
}

// PublishOnStage publishes a converging sequence: by the final stage the
// handle's snapshot answers exactly like the finished result.
func TestPublishOnStage(t *testing.T) {
	table := bgp.EmptyTable()
	table.Add(inet.MustParsePrefix("109.105.0.0/16"), 2603)
	table.Add(inet.MustParsePrefix("198.71.0.0/16"), 11537)
	table.Add(inet.MustParsePrefix("64.57.0.0/16"), 11537)
	table.Add(inet.MustParsePrefix("199.109.0.0/16"), 3754)
	traces := []trace.Trace{
		trace.NewTrace("ark1", ip("199.109.200.1"), ip("109.105.98.10"), ip("198.71.45.2")),
		trace.NewTrace("ark1", ip("199.109.200.2"), ip("109.105.98.10"), ip("198.71.46.180")),
		trace.NewTrace("ark1", ip("199.109.200.3"), ip("109.105.98.10"), ip("199.109.5.1")),
		trace.NewTrace("ark2", ip("199.109.200.4"), ip("64.57.28.1"), ip("199.109.5.1")),
	}
	c := core.NewCollector()
	c.TrackMonitors()
	for _, tr := range traces {
		c.Add(tr)
	}
	ev := c.Evidence()

	var h snapshot.Handle
	publishes := 0
	hook := snapshot.PublishOnStage(&h, ev)
	cfg := core.Config{IP2AS: table, F: 0.5, OnStage: func(st core.Stage, it int, ss *core.StageSnapshot) {
		hook(st, it, ss)
		if st == core.StageIteration || st == core.StageStub {
			publishes++
		}
	}}
	res, err := core.RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if publishes == 0 {
		t.Fatal("hook never fired")
	}
	s := h.Load()
	if s == nil {
		t.Fatal("nothing published")
	}
	if s.Len() != len(res.Inferences) {
		t.Fatalf("final snapshot has %d rows, result %d", s.Len(), len(res.Inferences))
	}
	for _, inf := range res.Inferences {
		if !reflect.DeepEqual(rowsSlice(s.Lookup(inf.Addr)), res.ByAddr(inf.Addr)) {
			t.Fatalf("published snapshot diverges at %v", inf.Addr)
		}
	}
	if m, ok := s.MonitorEvidence("ark1"); !ok || m.Traces() != 3 {
		t.Fatalf("published snapshot monitor index wrong: ok=%v", ok)
	}
}

// Guard against accidental fmt-style breakage of the string compare used
// by the monitor binary search: index order is strict byte order.
func TestMonitorIndexOrder(t *testing.T) {
	_, ev := testWorld(t)
	for i := 1; i < len(ev.Monitors); i++ {
		if strings.Compare(ev.Monitors[i-1].Monitor, ev.Monitors[i].Monitor) >= 0 {
			t.Fatalf("evidence monitors unsorted at %d", i)
		}
	}
}

// TestHandleVersion pins the versioned-publication contract the serving
// layer's ETag/cursor validation is built on: versions start at 0 on an
// empty handle, every Swap (including an unpublish) assigns a fresh
// strictly increasing version, and LoadVersion returns a consistent
// (snapshot, version) pair even across concurrent swaps.
func TestHandleVersion(t *testing.T) {
	res, ev := testWorld(t)
	full := snapshot.Build(res, ev)

	var h snapshot.Handle
	if s, v := h.LoadVersion(); s != nil || v != 0 {
		t.Fatalf("empty handle = (%v, %d), want (nil, 0)", s, v)
	}
	if h.Version() != 0 {
		t.Fatalf("empty handle Version = %d, want 0", h.Version())
	}

	h.Swap(full)
	s, v := h.LoadVersion()
	if s != full || v != 1 {
		t.Fatalf("after first Swap = (%p, %d), want (%p, 1)", s, v, full)
	}
	h.Swap(full) // republishing the same snapshot still bumps the version
	if got := h.Version(); got != 2 {
		t.Fatalf("after second Swap Version = %d, want 2", got)
	}
	h.Swap(nil) // unpublish is a publication too: readers must see it as new
	if s, v := h.LoadVersion(); s != nil || v != 3 {
		t.Fatalf("after unpublish = (%v, %d), want (nil, 3)", s, v)
	}

	// Concurrent swaps must hand out unique versions, and a reader must
	// never observe a (snapshot, version) pair that was not published.
	const writers, swapsPer = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < swapsPer; i++ {
				h.Swap(full)
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s, v := h.LoadVersion()
			if v < last {
				t.Errorf("observed version went backwards: %d after %d", v, last)
				return
			}
			last = v
			if v > 3 && s != full {
				t.Errorf("version %d paired with wrong snapshot %p", v, s)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got, want := h.Version(), uint64(3+writers*swapsPer); got != want {
		t.Fatalf("final Version = %d, want %d", got, want)
	}
}
