package topo

import (
	"math/rand"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// TraceConfig parameterises the traceroute engine.
type TraceConfig struct {
	Seed int64
	// DestsPerMonitor is the number of destinations each vantage point
	// probes.
	DestsPerMonitor int
	// MaxTTL bounds trace length.
	MaxTTL int
	// PerPacketLBProb is the per-trace probability that a mid-trace
	// flow change splices the tail of an alternate path onto the trace
	// (per-packet load balancing, which even Paris traceroute cannot
	// mask — §4.1).
	PerPacketLBProb float64
	// RouteChangeProb is the per-trace probability of a transient
	// route change, emulated the same way with a distinct flow label.
	RouteChangeProb float64
	// ThirdPartyProb is the per-reply probability that a border router
	// answers with one of its other inter-AS interfaces instead of the
	// ingress (the outgoing-interface/third-party artifact of §4.4.3).
	ThirdPartyProb float64
	// DestReplyProb is the probability the destination answers.
	DestReplyProb float64

	// Timestamps enables deterministic probe timestamps: each monitor
	// sweeps its destinations on its own cadence — a per-monitor phase
	// inside the first step, then one destination every TimeStep
	// seconds, plus per-probe jitter. All draws come from an RNG
	// independent of the path RNG (Seed XOR a salt), and one draw is
	// made per (monitor, destination) slot whether or not the trace
	// survives, so enabling timestamps never changes trace content and
	// a slot's timestamp never depends on earlier traces' fates.
	Timestamps bool
	// TimeBase is the epoch (seconds) of the sweep's first step.
	TimeBase int64
	// TimeStep is the per-monitor probe cadence in seconds; zero or
	// negative means 1. Keeping TimeJitter ≤ TimeStep guarantees each
	// monitor's timestamps are non-decreasing in probe order.
	TimeStep int64
	// TimeJitter is the per-probe jitter bound in seconds (a uniform
	// draw from [0, TimeJitter]).
	TimeJitter int64
}

// timeSeedSalt decorrelates the timestamp RNG from the path RNG so the
// same Seed drives both without one stream leaking into the other.
const timeSeedSalt = 0x74696d65 // "time"

// DefaultTraceConfig matches the repository's experiment suite.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Seed:            2,
		DestsPerMonitor: 2400,
		MaxTTL:          30,
		PerPacketLBProb: 0.015,
		RouteChangeProb: 0.01,
		ThirdPartyProb:  0.004,
		DestReplyProb:   0.9,
	}
}

// GenTraces runs the traceroute engine: every monitor probes
// DestsPerMonitor destinations drawn across the world (stub-weighted,
// like Ark's routed-/24 sweep), with the configured artifact injection.
// The output is deterministic in (world, cfg).
func (w *World) GenTraces(cfg TraceConfig) *trace.Dataset {
	ds := &trace.Dataset{}
	w.StreamTraces(cfg, func(t trace.Trace) bool {
		ds.Traces = append(ds.Traces, t)
		return true
	})
	return ds
}

// StreamTraces runs the same engine as GenTraces but hands each trace
// to yield as it is produced, materialising nothing: this is how
// cmd/gentopo writes 10M+-trace corpora without holding them. yield
// returning false stops the sweep. The trace sequence is identical to
// GenTraces for the same (world, cfg) — the batch path is this one plus
// an append.
func (w *World) StreamTraces(cfg TraceConfig, yield func(trace.Trace) bool) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = 30
	}
	// Destination pool weighted toward edge networks.
	var pool []*AS
	for _, a := range w.ASes {
		weight := 1
		switch a.Tier {
		case Stub:
			weight = 6
		case Regional:
			weight = 2
		}
		for i := 0; i < weight; i++ {
			pool = append(pool, a)
		}
	}
	tsRNG := rand.New(rand.NewSource(cfg.Seed ^ timeSeedSalt))
	step := cfg.TimeStep
	if step <= 0 {
		step = 1
	}
	flow := uint64(0)
	for _, m := range w.Monitors {
		var phase int64
		if cfg.Timestamps {
			phase = tsRNG.Int63n(step)
		}
		for d := 0; d < cfg.DestsPerMonitor; d++ {
			flow++
			var ts int64
			if cfg.Timestamps {
				ts = cfg.TimeBase + phase + int64(d)*step
				if cfg.TimeJitter > 0 {
					ts += tsRNG.Int63n(cfg.TimeJitter + 1)
				}
			}
			dstAS := pool[rng.Intn(len(pool))]
			dstAddr := dstAS.HostAddr(rng.Uint32())
			t, ok := w.genTrace(m, dstAS, dstAddr, flow, cfg, rng)
			if ok {
				t.Time = ts
				if !yield(t) {
					return
				}
			}
		}
	}
}

// GenTargetedTraces probes extra destinations inside the given ASes from
// every monitor — the §5.4 remedy of exposing more interface addresses
// by targeting specific links with additional traces. Unknown ASNs are
// skipped. Deterministic in (world, cfg, targets).
func (w *World) GenTargetedTraces(targets []inet.ASN, destsPerAS int, cfg TraceConfig) *trace.Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a9ecb))
	tsRNG := rand.New(rand.NewSource(cfg.Seed ^ 0x7a9ecb ^ timeSeedSalt))
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = 30
	}
	step := cfg.TimeStep
	if step <= 0 {
		step = 1
	}
	ds := &trace.Dataset{}
	flow := uint64(1) << 40 // distinct flow-label space from the sweep
	for _, m := range w.Monitors {
		var phase int64
		if cfg.Timestamps {
			phase = tsRNG.Int63n(step)
		}
		probe := int64(0)
		for _, asn := range targets {
			dstAS, ok := w.ByASN[asn]
			if !ok {
				continue
			}
			for d := 0; d < destsPerAS; d++ {
				flow++
				var ts int64
				if cfg.Timestamps {
					ts = cfg.TimeBase + phase + probe*step
					if cfg.TimeJitter > 0 {
						ts += tsRNG.Int63n(cfg.TimeJitter + 1)
					}
					probe++
				}
				dstAddr := dstAS.HostAddr(rng.Uint32())
				t, ok := w.genTrace(m, dstAS, dstAddr, flow, cfg, rng)
				if ok {
					t.Time = ts
					ds.Traces = append(ds.Traces, t)
				}
			}
		}
	}
	return ds
}

// genTrace emits one trace.
func (w *World) genTrace(m *Monitor, dstAS *AS, dstAddr inet.Addr, flow uint64,
	cfg TraceConfig, rng *rand.Rand) (trace.Trace, bool) {

	hops := w.routerPath(m, dstAS, dstAddr, flow)
	if hops == nil {
		return trace.Trace{}, false
	}
	complete := true

	// Mid-trace path artifacts (§4.1). Per-packet load balancing makes
	// later probes follow an alternate flow's path: splice the alternate
	// tail on, producing false adjacencies across the switch point. A
	// transient route change re-walks part of the path: splice the
	// alternate path back in from an *earlier* index, so already-seen
	// routers reappear downstream — the interface-cycle signature the
	// sanitiser discards traces for.
	switch r := rng.Float64(); {
	case r < cfg.PerPacketLBProb:
		alt := w.routerPath(m, dstAS, dstAddr, flow^0x5bd1e995)
		if alt != nil && len(alt) > 2 && len(hops) > 2 {
			k := 1 + rng.Intn(min(len(hops), len(alt))-1)
			hops = append(append([]hop(nil), hops[:k]...), alt[k:]...)
		}
	case r < cfg.PerPacketLBProb+cfg.RouteChangeProb:
		alt := w.routerPath(m, dstAS, dstAddr, flow^0x9e3779b9)
		if alt == nil {
			alt = hops
		}
		if len(hops) > 3 && len(alt) > 3 {
			k := 3 + rng.Intn(len(hops)-3)
			j := k - 2
			if j >= len(alt) {
				j = len(alt) - 1
			}
			hops = append(append([]hop(nil), hops[:k]...), alt[j:]...)
		}
	}

	out := trace.Trace{Monitor: m.Name, Dst: dstAddr}
	for i := range hops {
		if len(out.Hops) >= cfg.MaxTTL {
			complete = false
			break
		}
		out.Hops = append(out.Hops, w.reply(m, hops, i, flow, cfg, rng))
	}
	if complete && len(out.Hops) < cfg.MaxTTL && !dstAS.QuietHosts &&
		rng.Float64() < cfg.DestReplyProb {
		out.Hops = append(out.Hops, trace.Hop{Addr: dstAddr, QuotedTTL: 1})
	}
	// Trim trailing null hops (real traceroute output is cut at the gap
	// limit; trailing stars carry no adjacency anyway).
	for len(out.Hops) > 0 && !out.Hops[len(out.Hops)-1].Responded() {
		out.Hops = out.Hops[:len(out.Hops)-1]
	}
	if len(out.Hops) == 0 {
		return trace.Trace{}, false
	}
	return out, true
}

// reply computes the ICMP reply for the i-th traversed router.
func (w *World) reply(m *Monitor, hops []hop, i int, flow uint64,
	cfg TraceConfig, rng *rand.Rand) trace.Hop {

	h := hops[i]
	r := h.router
	switch {
	case r.AS.NAT:
		// The whole stub answers from one NAT'd external address (§4.8).
		return trace.Hop{Addr: r.AS.NATAddr, QuotedTTL: 1}
	case r.Unresponsive, r.AS.SilentBorders && r.IsBorder():
		return trace.Hop{QuotedTTL: 1}
	case r.BuggyTTL:
		// The router forwards TTL=1 packets; the next router replies
		// quoting TTL=0 (§4.1). At the path's end nothing answers.
		if i+1 < len(hops) {
			return trace.Hop{Addr: hops[i+1].ingress.Addr, QuotedTTL: 0}
		}
		return trace.Hop{QuotedTTL: 1}
	}
	if rng.Float64() < cfg.ThirdPartyProb {
		// Outgoing-interface reply (§4.4.3, Fig 4): the ICMP response
		// leaves via the router's route back to the monitor, and its
		// source address is that egress interface — a third-party
		// address when the reply route crosses a different AS than the
		// probe came from.
		if alt := w.replyIface(r, m, flow); alt != nil && alt != h.ingress {
			return trace.Hop{Addr: alt.Addr, QuotedTTL: 1}
		}
	}
	return trace.Hop{Addr: h.ingress.Addr, QuotedTTL: 1}
}

// replyIface resolves the interface a router's ICMP reply to the monitor
// leaves through: the inter-AS interface toward the reply route's next
// AS, when the router terminates one.
func (w *World) replyIface(r *Router, m *Monitor, flow uint64) *Iface {
	if r.AS == m.AS {
		return nil
	}
	path := w.ASPath(r.AS, m.AS)
	if len(path) < 2 {
		return nil
	}
	next := path[1]
	var candidates []*Iface
	for _, i := range r.interIfaces {
		if i.Link != nil && i.Link.Other(i).Router.AS == next {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[mix64(flow^uint64(r.ID)<<17)%uint64(len(candidates))]
}
