package topo

import (
	"bytes"
	"slices"
	"testing"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// timedTraceConfig is a small timestamped workload over the test world.
func timedTraceConfig() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.DestsPerMonitor = 40
	cfg.Timestamps = true
	cfg.TimeBase = 1_700_000_000
	cfg.TimeStep = 10
	cfg.TimeJitter = 3
	return cfg
}

// TestTimestampsNeverChangeContent pins the independence contract:
// turning timestamps on (any cadence) yields exactly the same trace
// sequence with only Time differing.
func TestTimestampsNeverChangeContent(t *testing.T) {
	w := Generate(SmallGenConfig())
	plain := w.GenTraces(func() TraceConfig {
		cfg := timedTraceConfig()
		cfg.Timestamps = false
		return cfg
	}())
	timed := w.GenTraces(timedTraceConfig())
	if len(plain.Traces) != len(timed.Traces) {
		t.Fatalf("timestamps changed trace count: %d vs %d", len(plain.Traces), len(timed.Traces))
	}
	for i := range plain.Traces {
		p, q := plain.Traces[i], timed.Traces[i]
		if p.Time != 0 {
			t.Fatalf("trace %d: untimed run stamped Time=%d", i, p.Time)
		}
		if q.Time < timedTraceConfig().TimeBase {
			t.Fatalf("trace %d: timed run left Time=%d below base", i, q.Time)
		}
		q.Time = 0
		if p.Monitor != q.Monitor || p.Dst != q.Dst || !slices.Equal(p.Hops, q.Hops) {
			t.Fatalf("trace %d content diverged:\n%+v\n%+v", i, p, q)
		}
	}
}

// TestTimestampsPerMonitorCadence pins the shape of the assignment:
// with TimeJitter ≤ TimeStep each monitor's timestamps are
// non-decreasing in probe order, every stamp lands in
// [TimeBase, TimeBase + phase + dests·step + jitter], and at least two
// monitors get distinct phases (the cadence is per-monitor, not
// global).
func TestTimestampsPerMonitorCadence(t *testing.T) {
	w := Generate(SmallGenConfig())
	cfg := timedTraceConfig()
	ds := w.GenTraces(cfg)
	lastByMon := map[string]int64{}
	firstByMon := map[string]int64{}
	maxTime := cfg.TimeBase + cfg.TimeStep + int64(cfg.DestsPerMonitor)*cfg.TimeStep + cfg.TimeJitter
	for i, tr := range ds.Traces {
		if tr.Time < cfg.TimeBase || tr.Time > maxTime {
			t.Fatalf("trace %d: time %d outside [%d, %d]", i, tr.Time, cfg.TimeBase, maxTime)
		}
		if last, ok := lastByMon[tr.Monitor]; ok && tr.Time < last {
			t.Fatalf("monitor %s regressed: %d after %d (jitter ≤ step must be monotone)",
				tr.Monitor, tr.Time, last)
		}
		lastByMon[tr.Monitor] = tr.Time
		if _, ok := firstByMon[tr.Monitor]; !ok {
			firstByMon[tr.Monitor] = tr.Time
		}
	}
	if len(firstByMon) < 2 {
		t.Skip("world has fewer than two monitors")
	}
	distinct := map[int64]bool{}
	for _, first := range firstByMon {
		distinct[first] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d monitors started at the same instant; per-monitor phase not applied", len(firstByMon))
	}
}

// sortedV4 generates the timed corpus, orders it by timestamp (stable,
// so per-monitor probe order breaks ties deterministically) and encodes
// it as MTRC v4 — the exact pipeline cmd/gentopo runs.
func sortedV4(t *testing.T, w *World, cfg TraceConfig) []byte {
	t.Helper()
	ds := w.GenTraces(cfg)
	slices.SortStableFunc(ds.Traces, func(a, b trace.Trace) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		}
		return 0
	})
	var buf bytes.Buffer
	if err := trace.WriteBinaryBlocksV4(&buf, ds, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimestampedV4ByteIdentical pins full-pipeline determinism: the
// same (world seed, trace seed) produces byte-identical sorted v4
// corpora across runs, and a different trace seed produces different
// bytes (the timestamp RNG actually keys off the seed).
func TestTimestampedV4ByteIdentical(t *testing.T) {
	cfg := timedTraceConfig()
	a := sortedV4(t, Generate(SmallGenConfig()), cfg)
	b := sortedV4(t, Generate(SmallGenConfig()), cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same seeds produced different v4 bytes")
	}
	cfg2 := cfg
	cfg2.Seed++
	c := sortedV4(t, Generate(SmallGenConfig()), cfg2)
	if bytes.Equal(a, c) {
		t.Fatal("different trace seeds produced identical v4 bytes")
	}
	// The bytes must decode back as a valid timestamped corpus.
	ds, err := trace.ReadBinary(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) == 0 {
		t.Fatal("empty corpus")
	}
	for i := 1; i < len(ds.Traces); i++ {
		if ds.Traces[i].Time < ds.Traces[i-1].Time {
			t.Fatalf("sorted corpus decoded out of order at %d", i)
		}
	}
}

// TestTimestampsTargetedTraces pins that the §5.4 targeted-probe path
// stamps with the same independence contract as the sweep.
func TestTimestampsTargetedTraces(t *testing.T) {
	w := Generate(SmallGenConfig())
	var asns []inet.ASN
	for _, a := range w.ASes {
		asns = append(asns, a.ASN)
		if len(asns) == 3 {
			break
		}
	}
	cfg := timedTraceConfig()
	plainCfg := cfg
	plainCfg.Timestamps = false
	plain := w.GenTargetedTraces(asns, 5, plainCfg)
	timed := w.GenTargetedTraces(asns, 5, cfg)
	if len(plain.Traces) != len(timed.Traces) {
		t.Fatalf("timestamps changed targeted trace count: %d vs %d", len(plain.Traces), len(timed.Traces))
	}
	for i := range plain.Traces {
		p, q := plain.Traces[i], timed.Traces[i]
		if q.Time < cfg.TimeBase {
			t.Fatalf("targeted trace %d: time %d below base", i, q.Time)
		}
		q.Time = 0
		if p.Monitor != q.Monitor || p.Dst != q.Dst || !slices.Equal(p.Hops, q.Hops) {
			t.Fatalf("targeted trace %d content diverged", i)
		}
	}
}
