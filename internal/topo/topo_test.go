package topo

import (
	"strings"
	"testing"

	"mapit/internal/inet"
	"mapit/internal/relation"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	return Generate(SmallGenConfig())
}

func TestGenerateDeterminism(t *testing.T) {
	w1 := Generate(SmallGenConfig())
	w2 := Generate(SmallGenConfig())
	if len(w1.ASes) != len(w2.ASes) || len(w1.Links) != len(w2.Links) ||
		len(w1.Announcements) != len(w2.Announcements) || len(w1.Monitors) != len(w2.Monitors) {
		t.Fatal("world generation not deterministic in sizes")
	}
	for i := range w1.Links {
		a, b := w1.Links[i], w2.Links[i]
		if a.A.Addr != b.A.Addr || a.B.Addr != b.B.Addr || a.Kind != b.Kind {
			t.Fatalf("link %d differs: %v/%v vs %v/%v", i, a.A.Addr, a.B.Addr, b.A.Addr, b.B.Addr)
		}
	}
	cfg := DefaultTraceConfig()
	cfg.DestsPerMonitor = 20
	d1 := w1.GenTraces(cfg)
	d2 := w2.GenTraces(cfg)
	if len(d1.Traces) != len(d2.Traces) {
		t.Fatal("trace generation not deterministic")
	}
	for i := range d1.Traces {
		x, y := d1.Traces[i], d2.Traces[i]
		if x.Monitor != y.Monitor || x.Dst != y.Dst || len(x.Hops) != len(y.Hops) {
			t.Fatalf("trace %d differs", i)
		}
		for j := range x.Hops {
			if x.Hops[j] != y.Hops[j] {
				t.Fatalf("trace %d hop %d differs", i, j)
			}
		}
	}
}

func TestWorldStructure(t *testing.T) {
	w := smallWorld(t)
	cfg := SmallGenConfig()
	if got := len(w.ASes); got != cfg.Tier1s+cfg.Tier2s+cfg.Regionals+cfg.Stubs {
		t.Errorf("AS count = %d", got)
	}
	for _, key := range []string{SpecialREN, SpecialT1A, SpecialT1B} {
		if w.Special[key] == nil {
			t.Errorf("special network %s missing", key)
		}
	}
	if w.Special[SpecialREN].Tier != Tier2 || w.Special[SpecialT1A].Tier != Tier1 {
		t.Error("special tiers wrong")
	}

	seen := map[inet.Addr]bool{}
	for _, l := range w.Links {
		if l.A.Router == l.B.Router {
			t.Fatalf("self link on router %d", l.A.Router.ID)
		}
		switch l.Kind {
		case IntraLink:
			if l.A.Router.AS != l.B.Router.AS {
				t.Fatal("intra link across ASes")
			}
			fallthrough
		case InterLink:
			// Point-to-point numbering: the two addresses must be each
			// other's /30 or /31 partners, from the owner's space.
			a, b := l.A.Addr, l.B.Addr
			if l.Slash31 {
				if inet.Slash31Other(a) != b {
					t.Fatalf("bad /31 pair %v/%v", a, b)
				}
			} else if inet.Slash30Other(a) != b || !inet.IsSlash30Host(a) || !inet.IsSlash30Host(b) {
				t.Fatalf("bad /30 pair %v/%v", a, b)
			}
			if l.PrefixOwner == nil || !l.PrefixOwner.Prefixes[0].Contains(a) {
				t.Fatalf("link %v/%v not in owner space", a, b)
			}
			if l.Kind == InterLink && l.A.Router.AS == l.B.Router.AS {
				t.Fatal("inter link within one AS")
			}
			for _, addr := range []inet.Addr{a, b} {
				if inet.IsSpecial(addr) {
					t.Fatalf("special address allocated: %v", addr)
				}
			}
			if l.Kind == IntraLink || !seen[a] {
				// IXP ifaces are shared; ptp must be unique.
			}
			if seen[a] || seen[b] {
				t.Fatalf("duplicate ptp address %v/%v", a, b)
			}
			seen[a], seen[b] = true, true
		case IXPLink:
			if l.A.Router.AS == l.B.Router.AS {
				t.Fatal("IXP peering within one AS")
			}
			if !w.Directory.IsIXPAddr(l.A.Addr) || !w.Directory.IsIXPAddr(l.B.Addr) {
				t.Fatal("IXP link outside IXP prefix")
			}
		}
	}
	// The transit convention holds in aggregate: most (but not all)
	// provider-customer links are numbered from the provider.
	provOwned, total := 0, 0
	for _, l := range w.Links {
		if l.Kind != InterLink {
			continue
		}
		a, b := l.A.Router.AS, l.B.Router.AS
		if w.Rels.Rel(a.ASN, b.ASN) != relation.Provider && w.Rels.Rel(b.ASN, a.ASN) != relation.Provider {
			continue
		}
		provider := a
		if w.Rels.Rel(b.ASN, a.ASN) == relation.Provider {
			provider = b
		}
		total++
		if l.PrefixOwner == provider {
			provOwned++
		}
	}
	if total == 0 {
		t.Fatal("no transit links")
	}
	frac := float64(provOwned) / float64(total)
	if frac < 0.55 || frac > 0.95 {
		t.Errorf("provider-owned transit fraction = %.2f; want within (0.55, 0.95)", frac)
	}
}

func TestTruth(t *testing.T) {
	w := smallWorld(t)
	truth := w.Truth()
	inter, intra := 0, 0
	for _, l := range w.Links {
		switch l.Kind {
		case InterLink:
			inter++
			ta := truth[l.A.Addr]
			if !ta.InterAS || !ta.ConnectsTo(l.B.Router.AS.ASN) || ta.OtherSide != l.B.Addr {
				t.Fatalf("truth wrong for %v: %+v", l.A.Addr, ta)
			}
			if ta.RouterAS != l.A.Router.AS.ASN {
				t.Fatalf("router AS wrong for %v", l.A.Addr)
			}
		case IntraLink:
			intra++
			if truth[l.A.Addr].InterAS {
				t.Fatalf("intra interface marked inter: %v", l.A.Addr)
			}
		case IXPLink:
			ta := truth[l.A.Addr]
			if !ta.InterAS || !ta.IXP || ta.OtherSide != 0 {
				t.Fatalf("IXP truth wrong: %+v", ta)
			}
		}
	}
	if inter == 0 || intra == 0 {
		t.Fatal("expected both inter and intra links")
	}
}

func TestValleyFreePaths(t *testing.T) {
	w := smallWorld(t)
	checked := 0
	for i := 0; i < len(w.ASes); i += 7 {
		for j := 1; j < len(w.ASes); j += 13 {
			src, dst := w.ASes[i], w.ASes[j]
			if src == dst {
				continue
			}
			path := w.ASPath(src, dst)
			if path == nil {
				t.Fatalf("no path %v -> %v", src.ASN, dst.ASN)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("path endpoints wrong")
			}
			// Valley-free: up* peer? down*.
			phase := 0 // 0 = climbing, 1 = after peer, 2 = descending
			for k := 1; k < len(path); k++ {
				x, y := path[k-1], path[k]
				switch w.Rels.Rel(x.ASN, y.ASN) {
				case relation.Customer: // x -> its provider: up
					if phase != 0 {
						t.Fatalf("valley in path %v->%v at %v->%v", src.ASN, dst.ASN, x.ASN, y.ASN)
					}
				case relation.Peer:
					if phase != 0 {
						t.Fatalf("second peer edge in path %v->%v", src.ASN, dst.ASN)
					}
					phase = 1
				case relation.Provider: // down
					phase = 2
				default:
					t.Fatalf("adjacent ASes %v,%v without relationship", x.ASN, y.ASN)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestRouterPathContinuity(t *testing.T) {
	w := smallWorld(t)
	m := w.Monitors[0]
	dst := w.Special[SpecialT1B]
	hops := w.routerPath(m, dst, dst.HostAddr(5), 42)
	if hops == nil {
		t.Fatal("no router path")
	}
	if hops[0].router != m.Router || hops[0].ingress != m.Gateway {
		t.Fatal("path must start at the monitor gateway")
	}
	for i := 1; i < len(hops); i++ {
		// The ingress interface must sit on the entered router.
		if hops[i].ingress.Router != hops[i].router {
			t.Fatalf("hop %d ingress not on its router", i)
		}
	}
	// The AS sequence along routers must match the AS path.
	asPath := w.ASPath(m.AS, dst)
	k := 0
	for _, h := range hops {
		if h.router.AS != asPath[k] {
			k++
			if k >= len(asPath) || h.router.AS != asPath[k] {
				t.Fatalf("router path deviates from AS path at router %d", h.router.ID)
			}
		}
	}
	if k != len(asPath)-1 {
		t.Fatalf("router path covered %d of %d ASes", k+1, len(asPath))
	}
}

func TestGenTraces(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultTraceConfig()
	cfg.DestsPerMonitor = 150
	ds := w.GenTraces(cfg)
	if len(ds.Traces) < cfg.DestsPerMonitor*len(w.Monitors)*8/10 {
		t.Fatalf("too few traces: %d", len(ds.Traces))
	}
	s := ds.Sanitize()
	if s.Stats.DiscardedTraces == 0 {
		t.Error("artifact injection should produce some cycle discards")
	}
	if f := s.Stats.RetainedTraceFraction(); f < 0.9 {
		t.Errorf("retained fraction = %.3f; artifacts too aggressive", f)
	}
	// Every responding address must be attributable: an interface, a
	// NAT external address, or a destination host.
	truth := w.Truth()
	for a := range s.AllAddrs {
		if _, ok := truth[a]; ok {
			continue
		}
		if as := w.ASOf(a); as != nil {
			continue // NAT or host address inside an AS's space
		}
		t.Fatalf("unattributable address in traces: %v", a)
	}
	// The /31 share of observed addresses should be in the vicinity of
	// the configured 40%.
	if f := inet.Slash31Fraction(s.AllAddrs); f < 0.2 || f > 0.6 {
		t.Errorf("observed /31 fraction = %.3f", f)
	}
}

func TestPublicInputsNoise(t *testing.T) {
	w := smallWorld(t)
	n := DefaultNoiseConfig()
	n.MissingRelFrac = 0.5
	n.MissingSiblingFrac = 0.5
	n.MissingIXPPrefixFrac = 1.0
	orgs, rels, dir := w.PublicInputs(n)
	if got, want := len(rels.Edges()), len(w.Rels.Edges()); got >= want {
		t.Errorf("noisy rels %d not smaller than true %d", got, want)
	}
	if dir.NumPrefixes() != 0 {
		t.Errorf("full IXP noise left %d prefixes", dir.NumPrefixes())
	}
	trueGroups := len(w.Orgs.Groups())
	if trueGroups > 1 && len(orgs.Groups()) > trueGroups {
		t.Errorf("noisy orgs grew")
	}
	// Zero noise reproduces the truth.
	orgs2, rels2, dir2 := w.PublicInputs(NoiseConfig{})
	if len(rels2.Edges()) != len(w.Rels.Edges()) || dir2.NumPrefixes() != w.Directory.NumPrefixes() {
		t.Error("zero noise must reproduce full datasets")
	}
	if len(orgs2.Groups()) != trueGroups {
		t.Error("zero noise must reproduce sibling groups")
	}
}

func TestBGPTableCoversWorld(t *testing.T) {
	w := smallWorld(t)
	tbl := w.Table()
	mapped, total := 0, 0
	for _, l := range w.Links {
		if l.Kind != InterLink {
			continue
		}
		for _, i := range []*Iface{l.A, l.B} {
			total++
			asn, ok := tbl.Lookup(i.Addr)
			if !ok {
				continue
			}
			mapped++
			if asn != i.SpaceAS {
				// MOAS election may pick the second origin; allow the
				// true space AS or a MOAS partner.
				po, _ := tbl.LookupPrefix(i.Addr)
				okMoas := false
				for _, m := range po.MOAS {
					if m == i.SpaceAS {
						okMoas = true
					}
				}
				if !okMoas {
					t.Fatalf("BGP origin %v for %v; space AS %v", asn, i.Addr, i.SpaceAS)
				}
			}
		}
	}
	if float64(mapped)/float64(total) < 0.9 {
		t.Errorf("BGP coverage %.3f too low", float64(mapped)/float64(total))
	}
}

func TestHostAddrInHostSpace(t *testing.T) {
	w := smallWorld(t)
	a := w.ASes[0]
	for n := uint32(0); n < 10; n++ {
		addr := a.HostAddr(n * 1000)
		if !a.hostSpace().Contains(addr) {
			t.Fatalf("host addr %v outside host space", addr)
		}
		if _, clash := w.Ifaces[addr]; clash && addr != a.NATAddr {
			// Monitor gateways live in host space by design; they use
			// high offsets that the test range avoids.
			t.Fatalf("host addr %v collides with interface", addr)
		}
	}
}

func TestWorldAccessors(t *testing.T) {
	w := smallWorld(t)
	ren := w.Special[SpecialREN]
	if len(ren.Providers()) == 0 || len(ren.Customers()) == 0 || len(ren.Peers()) == 0 {
		t.Error("REN should have providers, customers and peers")
	}
	border := 0
	for _, r := range ren.Routers {
		if r.IsBorder() {
			border++
		}
	}
	if border == 0 {
		t.Error("REN has no border routers")
	}
	if got := len(w.InterASIfaces()); got == 0 {
		t.Error("no inter-AS interfaces listed")
	}
	if s := w.String(); !strings.Contains(s, "ASes") || !strings.Contains(s, "monitors") {
		t.Errorf("World.String = %q", s)
	}
	for _, tier := range []Tier{Tier1, Tier2, Regional, Stub} {
		if tier.String() == "" {
			t.Error("Tier.String empty")
		}
	}
	// ASOf resolves interface, host and unknown addresses.
	someIface := w.Links[0].A
	if w.ASOf(someIface.Addr) != someIface.Router.AS {
		t.Error("ASOf(interface) wrong")
	}
	if w.ASOf(ren.HostAddr(42)) != ren {
		t.Error("ASOf(host) wrong")
	}
	if w.ASOf(inet.MustParseAddr("203.0.112.1")) != nil {
		t.Error("ASOf(unknown) should be nil")
	}
}
