package topo

import (
	"testing"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// TestNATStubBehaviour: every router of a NAT stub answers from the
// stub-side interface of one provider link, and its hosts are silent.
func TestNATStubBehaviour(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.NATStubFrac = 1.0 // every stub with links becomes a NAT stub
	w := Generate(cfg)
	var nat *AS
	for _, a := range w.ASes {
		if a.NAT {
			nat = a
			break
		}
	}
	if nat == nil {
		t.Fatal("no NAT stub generated")
	}
	if !nat.QuietHosts {
		t.Error("NAT stub must have quiet hosts")
	}
	iface, ok := w.Ifaces[nat.NATAddr]
	if !ok {
		t.Fatalf("NAT address %v is not an interface", nat.NATAddr)
	}
	if iface.Router.AS != nat {
		t.Error("NAT address must sit on the stub's own router")
	}
	if iface.Link == nil || iface.Link.Kind != InterLink {
		t.Error("NAT address must be an inter-AS link interface (the WAN side)")
	}

	// Traces toward the NAT stub must show the NAT address for stub
	// routers and never a dst reply.
	tc := DefaultTraceConfig()
	tc.DestsPerMonitor = 1 // unused by GenTargetedTraces
	ds := w.GenTargetedTraces([]inet.ASN{nat.ASN}, 10, tc)
	if len(ds.Traces) == 0 {
		t.Fatal("no targeted traces")
	}
	for _, tr := range ds.Traces {
		for _, h := range tr.Hops {
			if !h.Responded() {
				continue
			}
			if hi, ok := w.Ifaces[h.Addr]; ok && hi.Router.AS == nat && h.Addr != nat.NATAddr {
				t.Fatalf("stub router replied %v instead of NAT address %v", h.Addr, nat.NATAddr)
			}
			if as := w.ASOf(h.Addr); as == nat && h.Addr != nat.NATAddr {
				t.Fatalf("NAT stub leaked address %v", h.Addr)
			}
		}
	}
}

// TestReplyIface: the third-party reply interface is the router's
// egress toward the monitor's AS, which is what produces Fig 4's
// dual-inference pattern.
func TestReplyIface(t *testing.T) {
	w := Generate(SmallGenConfig())
	m := w.Monitors[0]
	checked := 0
	for _, a := range w.ASes {
		if a == m.AS {
			continue
		}
		for _, r := range a.Routers {
			alt := w.replyIface(r, m, 7)
			if alt == nil {
				continue
			}
			checked++
			// The interface must be one of the router's inter-AS
			// interfaces, facing the reply route's next AS.
			path := w.ASPath(r.AS, m.AS)
			if len(path) < 2 {
				t.Fatal("reply route missing")
			}
			if alt.Router != r {
				t.Fatal("reply interface not on the router")
			}
			if alt.Link == nil || alt.Link.Other(alt).Router.AS != path[1] {
				t.Fatalf("reply interface faces %v, expected %v",
					alt.Link.Other(alt).Router.AS.ASN, path[1].ASN)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no reply interfaces resolved")
	}
	// Same-AS routers never produce a third-party reply.
	if w.replyIface(m.Router, m, 7) != nil {
		t.Error("monitor's own router produced a reply interface")
	}
}

// TestGenTargetedTraces: targeted probing reaches the requested ASes and
// is deterministic.
func TestGenTargetedTraces(t *testing.T) {
	w := Generate(SmallGenConfig())
	targets := []inet.ASN{w.ASes[len(w.ASes)-1].ASN, w.ASes[len(w.ASes)-2].ASN, 424242}
	tc := DefaultTraceConfig()
	a := w.GenTargetedTraces(targets, 5, tc)
	b := w.GenTargetedTraces(targets, 5, tc)
	if len(a.Traces) != len(b.Traces) || len(a.Traces) == 0 {
		t.Fatalf("targeted traces: %d vs %d", len(a.Traces), len(b.Traces))
	}
	for i := range a.Traces {
		if a.Traces[i].Dst != b.Traces[i].Dst {
			t.Fatal("targeted tracing not deterministic")
		}
	}
	// All destinations fall inside the requested (known) ASes.
	for _, tr := range a.Traces {
		as := w.ASOf(tr.Dst)
		if as == nil || (as.ASN != targets[0] && as.ASN != targets[1]) {
			t.Fatalf("destination %v outside targets", tr.Dst)
		}
	}
}

// TestQuietHosts: destinations in quiet networks never reply.
func TestQuietHosts(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.QuietHostsStubFrac = 1.0
	w := Generate(cfg)
	var quiet *AS
	for _, a := range w.ASes {
		if a.Tier == Stub && a.QuietHosts && !a.NAT {
			quiet = a
			break
		}
	}
	if quiet == nil {
		t.Fatal("no quiet stub")
	}
	tc := DefaultTraceConfig()
	ds := w.GenTargetedTraces([]inet.ASN{quiet.ASN}, 20, tc)
	for _, tr := range ds.Traces {
		for _, h := range tr.Hops {
			if h.Addr == tr.Dst {
				t.Fatalf("quiet host %v replied", tr.Dst)
			}
		}
	}
}

// TestBuggyTTLSignature: a buggy router's position carries the next
// router's address quoting TTL 0, which the sanitiser then nulls.
func TestBuggyTTLSignature(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.BuggyRouterProb = 0.5
	cfg.UnresponsiveRouterProb = 0
	cfg.SilentBorderASFrac = 0
	w := Generate(cfg)
	tc := DefaultTraceConfig()
	tc.DestsPerMonitor = 100
	tc.ThirdPartyProb = 0
	tc.PerPacketLBProb = 0
	tc.RouteChangeProb = 0
	ds := w.GenTraces(tc)
	sawQuoted, sawSignature := false, false
	for _, tr := range ds.Traces {
		for i, h := range tr.Hops {
			if h.Responded() && h.QuotedTTL == 0 {
				sawQuoted = true
				// The common signature: the same address follows at the
				// next position (the real reply of the next router).
				// NAT stubs and chained buggy routers can perturb it,
				// so require it only to occur, not to always hold.
				if i+1 < len(tr.Hops) && tr.Hops[i+1].Addr == h.Addr {
					sawSignature = true
				}
			}
		}
	}
	if !sawSignature {
		t.Error("never saw the quoted-TTL hop followed by the real reply")
	}
	if !sawQuoted {
		t.Fatal("no quoted-TTL=0 hops at 50% buggy-router rate")
	}
	// The sanitiser removes them all.
	s := ds.Sanitize()
	for _, tr := range s.Retained {
		for _, h := range tr.Hops {
			if h.Responded() && h.QuotedTTL == 0 {
				t.Fatal("sanitiser left a quoted-TTL=0 hop")
			}
		}
	}
}

// TestLargeGenConfig sanity-checks the headline world's scale.
func TestLargeGenConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := Generate(LargeGenConfig())
	if len(w.ASes) < 1200 {
		t.Errorf("large world only %d ASes", len(w.ASes))
	}
	inter := 0
	for _, l := range w.Links {
		if l.Kind != IntraLink {
			inter++
		}
	}
	if inter < 2000 {
		t.Errorf("large world only %d inter-AS links", inter)
	}
}

// TestTraceDatasetsComposable: targeted traces merge cleanly with the
// sweep (distinct flow-label spaces must not collide semantics).
func TestTraceDatasetsComposable(t *testing.T) {
	w := Generate(SmallGenConfig())
	tc := DefaultTraceConfig()
	tc.DestsPerMonitor = 50
	sweep := w.GenTraces(tc)
	extra := w.GenTargetedTraces([]inet.ASN{w.ASes[0].ASN}, 5, tc)
	combined := &trace.Dataset{Traces: append(append([]trace.Trace(nil), sweep.Traces...), extra.Traces...)}
	s := combined.Sanitize()
	if s.Stats.TotalTraces != len(sweep.Traces)+len(extra.Traces) {
		t.Fatal("merge lost traces")
	}
}

// TestStreamTracesEquivalence: the streaming generator must yield the
// exact trace sequence GenTraces materialises — cmd/gentopo's streaming
// corpus writer depends on it.
func TestStreamTracesEquivalence(t *testing.T) {
	w := Generate(SmallGenConfig())
	cfg := DefaultTraceConfig()
	cfg.DestsPerMonitor = 200
	want := w.GenTraces(cfg)
	var got []trace.Trace
	w.StreamTraces(cfg, func(tr trace.Trace) bool {
		got = append(got, tr)
		return true
	})
	if len(got) != len(want.Traces) {
		t.Fatalf("stream yielded %d traces, batch %d", len(got), len(want.Traces))
	}
	for i := range got {
		if got[i].Monitor != want.Traces[i].Monitor || got[i].Dst != want.Traces[i].Dst ||
			len(got[i].Hops) != len(want.Traces[i].Hops) {
			t.Fatalf("trace %d differs between stream and batch", i)
		}
		for j := range got[i].Hops {
			if got[i].Hops[j] != want.Traces[i].Hops[j] {
				t.Fatalf("trace %d hop %d differs", i, j)
			}
		}
	}

	// Early stop: yield=false truncates cleanly.
	n := 0
	w.StreamTraces(cfg, func(trace.Trace) bool {
		n++
		return n < 17
	})
	if n != 17 {
		t.Fatalf("early stop yielded %d traces, want 17", n)
	}
}
