package topo

import (
	"math/rand"
	"slices"

	"mapit/internal/as2org"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
)

// IfaceTruth is the exact ground truth for one interface address — the
// information the paper obtains from Internet2's interface list (§5.1.1)
// and approximates via DNS hostnames for the Tier 1s (§5.1.2).
type IfaceTruth struct {
	Addr inet.Addr
	// RouterAS operates the router the interface sits on.
	RouterAS inet.ASN
	// SpaceAS originated the prefix the address is numbered from (zero
	// for IXP space).
	SpaceAS inet.ASN
	// InterAS reports whether the interface terminates an inter-AS link.
	InterAS bool
	// IXP reports an exchange-LAN interface (multipoint).
	IXP bool
	// ConnectedASes lists the far-end ASes (one for point-to-point
	// links; possibly several for IXP interfaces), sorted.
	ConnectedASes []inet.ASN
	// OtherSide is the far interface of the point-to-point link (zero
	// for IXP and host-facing interfaces).
	OtherSide inet.Addr
}

// ConnectsTo reports whether asn is among the interface's far-end ASes.
func (t IfaceTruth) ConnectsTo(asn inet.ASN) bool {
	for _, c := range t.ConnectedASes {
		if c == asn {
			return true
		}
	}
	return false
}

// Truth builds the complete interface ground truth for the world.
func (w *World) Truth() map[inet.Addr]IfaceTruth {
	out := make(map[inet.Addr]IfaceTruth, len(w.Ifaces))
	for addr, i := range w.Ifaces {
		t := IfaceTruth{
			Addr:     addr,
			RouterAS: i.Router.AS.ASN,
			SpaceAS:  i.SpaceAS,
		}
		out[addr] = t
	}
	for _, l := range w.Links {
		switch l.Kind {
		case IntraLink:
			// Internal: defaults are already right.
		case InterLink:
			for _, pair := range [2][2]*Iface{{l.A, l.B}, {l.B, l.A}} {
				t := out[pair[0].Addr]
				t.InterAS = true
				t.ConnectedASes = appendASN(t.ConnectedASes, pair[1].Router.AS.ASN)
				t.OtherSide = pair[1].Addr
				out[pair[0].Addr] = t
			}
		case IXPLink:
			for _, pair := range [2][2]*Iface{{l.A, l.B}, {l.B, l.A}} {
				t := out[pair[0].Addr]
				t.InterAS = true
				t.IXP = true
				t.ConnectedASes = appendASN(t.ConnectedASes, pair[1].Router.AS.ASN)
				out[pair[0].Addr] = t
			}
		}
	}
	for a, t := range out {
		slices.Sort(t.ConnectedASes)
		out[a] = t
	}
	return out
}

func appendASN(list []inet.ASN, a inet.ASN) []inet.ASN {
	for _, x := range list {
		if x == a {
			return list
		}
	}
	return append(list, a)
}

// NoiseConfig degrades the true metadata into the imperfect public
// datasets the paper actually consumes: WHOIS-derived sibling lists miss
// pairs (§4.9), the relationship dataset "is prone to its own errors and
// incomplete" (§5), and IXP prefix lists are "sometimes stale and
// incomplete" (§5).
type NoiseConfig struct {
	Seed int64
	// MissingSiblingFrac drops a share of true sibling pairs.
	MissingSiblingFrac float64
	// MissingRelFrac drops a share of relationship edges.
	MissingRelFrac float64
	// MissingIXPPrefixFrac drops a share of IXP prefixes.
	MissingIXPPrefixFrac float64
}

// DefaultNoiseConfig matches the experiment suite.
func DefaultNoiseConfig() NoiseConfig {
	return NoiseConfig{
		Seed:                 3,
		MissingSiblingFrac:   0.15,
		MissingRelFrac:       0.05,
		MissingIXPPrefixFrac: 0.10,
	}
}

// PublicInputs derives the noisy public view of the world's metadata.
func (w *World) PublicInputs(n NoiseConfig) (*as2org.Orgs, *relation.Dataset, *ixp.Directory) {
	rng := rand.New(rand.NewSource(n.Seed))

	orgs := as2org.New()
	for _, g := range w.Orgs.Groups() {
		for _, asn := range g[1:] {
			if rng.Float64() < n.MissingSiblingFrac {
				continue
			}
			orgs.AddSiblingPair(g[0], asn)
		}
	}

	rels := relation.New()
	for _, e := range w.Rels.Edges() {
		if rng.Float64() < n.MissingRelFrac {
			continue
		}
		if e.Rel == relation.Provider {
			rels.AddTransit(e.A, e.B)
		} else {
			rels.AddPeering(e.A, e.B)
		}
	}

	dir := ixp.New()
	for i, x := range w.IXPs {
		if rng.Float64() < n.MissingIXPPrefixFrac {
			continue
		}
		dir.AddPrefix(x.Prefix, x.Name)
		if i%2 == 0 { // ASN knowledge is even spottier
			dir.AddASN(x.ASN, x.Name)
		}
	}
	return orgs, rels, dir
}
