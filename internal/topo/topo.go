// Package topo generates synthetic Internets and runs a traceroute engine
// over them. It stands in for the measurement substrate the paper uses —
// CAIDA Ark traces, RouteViews/RIPE BGP feeds, PeeringDB/PCH IXP lists,
// CAIDA AS2ORG/relationship files and the Internet2 ground-truth feed —
// while exposing exact ground truth about every interface, so the MAP-IT
// evaluation (precision/recall per relationship class, f sweeps, stage
// ablations, baseline comparisons) can be reproduced end to end offline.
//
// The generator builds a Gao-Rexford style AS hierarchy (clique of Tier
// 1s, transit ISPs, regionals, stubs, sibling organisations, IXPs),
// assigns each AS a router-level topology, numbers every link from /30 or
// /31 prefixes with the provider/customer addressing conventions (and the
// paper's Internet2-style violations), and computes valley-free routes.
// The traceroute engine then emits traces with the artifact classes the
// paper discusses: unresponsive hops, per-packet load balancing, replies
// from outgoing interfaces (third-party addresses), TTL=1 forwarding
// bugs, NAT'd stubs and transient route changes.
package topo

import (
	"fmt"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
)

// Tier is the position of an AS in the generated hierarchy.
type Tier uint8

const (
	// Tier1 ASes form the top clique (settlement-free full mesh).
	Tier1 Tier = 1
	// Tier2 ASes are large transit ISPs (customers of Tier 1s).
	Tier2 Tier = 2
	// Regional ASes buy transit from Tier 2s and sell to stubs.
	Regional Tier = 3
	// Stub ASes originate/sink traffic and sell no transit.
	Stub Tier = 4
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Regional:
		return "regional"
	default:
		return "stub"
	}
}

// AS is one autonomous system in the world.
type AS struct {
	ASN  inet.ASN
	Tier Tier
	// Org is the operating organisation (shared by siblings).
	Org string
	// Prefixes is the address space allocated to the AS; the first
	// prefix hosts infrastructure (links), the rest host end systems.
	Prefixes []inet.Prefix
	// Routers is the AS's router-level topology.
	Routers []*Router
	// NAT marks a stub whose routers always reply with one fixed
	// external address (§4.8's NAT case).
	NAT bool
	// NATAddr is the fixed reply address for NAT stubs: the stub-side
	// interface address of one of its provider links (the NAT device's
	// WAN interface).
	NATAddr inet.Addr
	// QuietHosts marks a network whose end systems never answer probes
	// (low visibility, §4.8).
	QuietHosts bool
	// SilentBorders marks an AS whose border routers never answer
	// traceroute (§3.3: some ASes disable replies on border routers).
	SilentBorders bool
	// Unannounced marks an AS that does not announce its space in BGP
	// (exercises unmapped-address handling).
	Unannounced bool

	providers []*AS
	customers []*AS
	peers     []*AS

	hostCursor uint32 // next host address offset within host space
}

// Providers returns the AS's transit providers.
func (a *AS) Providers() []*AS { return a.providers }

// Customers returns the AS's transit customers.
func (a *AS) Customers() []*AS { return a.customers }

// Peers returns the AS's settlement-free peers.
func (a *AS) Peers() []*AS { return a.peers }

// Router is one router inside an AS.
type Router struct {
	// ID is unique across the world.
	ID int
	AS *AS
	// Ifaces are the router's numbered interfaces.
	Ifaces []*Iface
	// Unresponsive routers never answer probes.
	Unresponsive bool
	// BuggyTTL routers forward TTL=1 packets instead of replying
	// (§4.1's quoted-TTL=0 artifact).
	BuggyTTL bool
	// intra-AS adjacency: neighbour router -> our interface on the link
	intra map[*Router]*Iface
	// border links: per neighbouring AS, our interfaces on links to it
	interIfaces []*Iface
}

// IsBorder reports whether the router terminates any inter-AS link.
func (r *Router) IsBorder() bool { return len(r.interIfaces) > 0 }

// LinkKind classifies a link.
type LinkKind uint8

const (
	// IntraLink connects two routers of one AS.
	IntraLink LinkKind = iota
	// InterLink is a point-to-point link between routers of two ASes.
	InterLink
	// IXPLink is a (virtual) peering across an IXP LAN; the interfaces
	// are numbered from the IXP prefix (multipoint).
	IXPLink
)

// Link is a layer-3 adjacency between two router interfaces.
type Link struct {
	Kind LinkKind
	// A and B are the two endpoint interfaces.
	A, B *Iface
	// PrefixOwner is the AS whose space numbered the link (nil for IXP
	// links, whose addresses belong to the exchange).
	PrefixOwner *AS
	// Slash31 reports /31 numbering (else /30).
	Slash31 bool
}

// Other returns the far interface from i.
func (l *Link) Other(i *Iface) *Iface {
	if l.A == i {
		return l.B
	}
	return l.A
}

// Iface is a numbered router interface.
type Iface struct {
	Addr   inet.Addr
	Router *Router
	Link   *Link
	// SpaceAS is the origin AS of the prefix the address is taken from
	// (zero for IXP space).
	SpaceAS inet.ASN
}

// IXP is one generated exchange point.
type IXP struct {
	Name   string
	ASN    inet.ASN // route-server/management AS
	Prefix inet.Prefix
	next   uint32 // next LAN host offset
}

// World is a fully generated Internet.
type World struct {
	ASes   []*AS
	ByASN  map[inet.ASN]*AS
	Links  []*Link
	IXPs   []*IXP
	Ifaces map[inet.Addr]*Iface

	// Rels is the true relationship dataset; Orgs the true sibling
	// structure; Directory the true IXP directory; Announcements the
	// generated multi-collector BGP view.
	Rels          *relation.Dataset
	Orgs          *as2org.Orgs
	Directory     *ixp.Directory
	Announcements []bgp.Announcement

	// Monitors are the vantage points available to the trace engine.
	Monitors []*Monitor

	// Special names the designated evaluation networks (SpecialREN,
	// SpecialT1A, SpecialT1B).
	Special map[string]*AS

	cfg     GenConfig
	routes  *routeCache
	linkIdx map[[2]inet.ASN][]*Link
	nextID  int
}

// Monitor is a traceroute vantage point: a host attached to a specific
// router, with a first-hop gateway interface.
type Monitor struct {
	Name    string
	AS      *AS
	Router  *Router
	Gateway *Iface // host-facing interface reported at TTL=1
}

// AS returns the AS owning an address per the true allocation (not BGP),
// or nil.
func (w *World) ASOf(a inet.Addr) *AS {
	if i, ok := w.Ifaces[a]; ok {
		return i.Router.AS
	}
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			if p.Contains(a) {
				return as
			}
		}
	}
	return nil
}

// InterASIfaces returns every interface on inter-AS (incl. IXP) links.
func (w *World) InterASIfaces() []*Iface {
	var out []*Iface
	for _, l := range w.Links {
		if l.Kind == IntraLink {
			continue
		}
		out = append(out, l.A, l.B)
	}
	return out
}

// Table builds the merged BGP origin table from the world's
// announcements.
func (w *World) Table() *bgp.Table { return bgp.NewTable(w.Announcements) }

// String summarises the world.
func (w *World) String() string {
	inter := 0
	for _, l := range w.Links {
		if l.Kind != IntraLink {
			inter++
		}
	}
	routers := 0
	for _, a := range w.ASes {
		routers += len(a.Routers)
	}
	return fmt.Sprintf("world: %d ASes, %d routers, %d links (%d inter-AS), %d IXPs, %d monitors",
		len(w.ASes), routers, len(w.Links), inter, len(w.IXPs), len(w.Monitors))
}
