package topo

import (
	"cmp"
	"slices"

	"mapit/internal/inet"
)

// Valley-free (Gao-Rexford) routing: every AS prefers routes learned from
// customers over routes from peers over routes from providers, then
// shorter paths, with deterministic tie-breaks. Routes compose up* [peer]
// down* paths, which is what real traceroutes traverse.

type routeKind int8

const (
	routeNone     routeKind = 0
	routeProvider routeKind = 1
	routePeer     routeKind = 2
	routeCustomer routeKind = 3
)

type asRoute struct {
	kind routeKind
	dist int
	next *AS // next-hop AS (nil at the destination)
}

// routeCache memoises per-destination routing tables and intra-AS router
// paths.
type routeCache struct {
	w      *World
	tables map[inet.ASN]map[inet.ASN]asRoute
	intra  map[[2]int][]*Router
}

func newRouteCache(w *World) *routeCache {
	return &routeCache{
		w:      w,
		tables: make(map[inet.ASN]map[inet.ASN]asRoute),
		intra:  make(map[[2]int][]*Router),
	}
}

// table computes (or returns memoised) routes from every AS toward dst.
func (rc *routeCache) table(dst *AS) map[inet.ASN]asRoute {
	if t, ok := rc.tables[dst.ASN]; ok {
		return t
	}
	t := make(map[inet.ASN]asRoute, len(rc.w.ASes))
	t[dst.ASN] = asRoute{kind: routeCustomer, dist: 0}

	// Customer routes: BFS from dst up provider edges — x reaches dst
	// strictly descending through its customer cone.
	queue := []*AS{dst}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		provs := append([]*AS(nil), y.providers...)
		slices.SortFunc(provs, func(a, b *AS) int { return cmp.Compare(a.ASN, b.ASN) })
		for _, p := range provs {
			if _, ok := t[p.ASN]; ok {
				continue
			}
			t[p.ASN] = asRoute{kind: routeCustomer, dist: t[y.ASN].dist + 1, next: y}
			queue = append(queue, p)
		}
	}

	// Peer routes: one peer edge into a customer route.
	for _, x := range rc.w.ASes {
		if r, ok := t[x.ASN]; ok && r.kind == routeCustomer {
			continue
		}
		best := asRoute{}
		for _, q := range x.peers {
			qr, ok := t[q.ASN]
			if !ok || qr.kind != routeCustomer {
				continue
			}
			cand := asRoute{kind: routePeer, dist: qr.dist + 1, next: q}
			if best.kind == routeNone || cand.dist < best.dist ||
				(cand.dist == best.dist && cand.next.ASN < best.next.ASN) {
				best = cand
			}
		}
		if best.kind != routeNone {
			t[x.ASN] = best
		}
	}

	// Provider routes: relax upward edges until stable (an AS forwards
	// along its own preferred route, so the metric is the provider's
	// selected distance plus one).
	for changed := true; changed; {
		changed = false
		for _, x := range rc.w.ASes {
			if r, ok := t[x.ASN]; ok && r.kind != routeProvider {
				continue // customer/peer routes always win
			}
			best, hasBest := t[x.ASN]
			for _, p := range x.providers {
				pr, ok := t[p.ASN]
				if !ok {
					continue
				}
				cand := asRoute{kind: routeProvider, dist: pr.dist + 1, next: p}
				if !hasBest || cand.dist < best.dist ||
					(cand.dist == best.dist && cand.next.ASN < best.next.ASN && best.kind == routeProvider) {
					best, hasBest = cand, true
				}
			}
			if hasBest && best != t[x.ASN] {
				t[x.ASN] = best
				changed = true
			}
		}
	}

	rc.tables[dst.ASN] = t
	return t
}

// ASPath returns the AS-level path src → dst (inclusive), or nil when dst
// is unreachable from src.
func (w *World) ASPath(src, dst *AS) []*AS {
	t := w.routes.table(dst)
	path := []*AS{src}
	cur := src
	for cur != dst {
		r, ok := t[cur.ASN]
		if !ok || len(path) > 64 {
			return nil
		}
		if r.next == nil {
			break
		}
		cur = r.next
		path = append(path, cur)
	}
	return path
}

// intraPath returns the router path a → b (inclusive) inside one AS.
func (rc *routeCache) intraPath(a, b *Router) []*Router {
	if a == b {
		return []*Router{a}
	}
	key := [2]int{a.ID, b.ID}
	if p, ok := rc.intra[key]; ok {
		return p
	}
	// BFS over intra links with deterministic neighbour order.
	prev := map[*Router]*Router{a: a}
	queue := []*Router{a}
	for len(queue) > 0 && prev[b] == nil {
		cur := queue[0]
		queue = queue[1:]
		nbrs := make([]*Router, 0, len(cur.intra))
		for n := range cur.intra {
			nbrs = append(nbrs, n)
		}
		slices.SortFunc(nbrs, func(a, b *Router) int { return cmp.Compare(a.ID, b.ID) })
		for _, n := range nbrs {
			if prev[n] == nil {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if prev[b] == nil {
		rc.intra[key] = nil
		return nil
	}
	var rev []*Router
	for cur := b; cur != a; cur = prev[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, a)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	rc.intra[key] = rev
	return rev
}

// hop is one router traversal with the interface the packet arrived on.
type hop struct {
	router  *Router
	ingress *Iface
}

// mix64 is a cheap deterministic hash for flow-based choices.
func mix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// pickLink selects one of the parallel links between two ASes by flow
// hash (per-flow load balancing: constant within a trace, varies across
// traces — the part Paris traceroute keeps stable).
func (w *World) pickLink(x, y *AS, flow uint64) *Link {
	links := w.linkIdx[linkKey(x.ASN, y.ASN)]
	if len(links) == 0 {
		return nil
	}
	h := mix64(flow ^ uint64(x.ASN)<<32 ^ uint64(y.ASN))
	return links[h%uint64(len(links))]
}

// routerPath expands the AS path into the router-level hop sequence the
// probe traverses, ending at the router that hosts dstAddr.
func (w *World) routerPath(m *Monitor, dstAS *AS, dstAddr inet.Addr, flow uint64) []hop {
	asPath := w.ASPath(m.AS, dstAS)
	if asPath == nil {
		return nil
	}
	hops := []hop{{router: m.Router, ingress: m.Gateway}}
	cur := m.Router
	appendIntra := func(to *Router) bool {
		p := w.routes.intraPath(cur, to)
		if p == nil {
			return false
		}
		for i := 1; i < len(p); i++ {
			link := p[i-1].intra[p[i]].Link
			hops = append(hops, hop{router: p[i], ingress: link.Other(p[i-1].intra[p[i]])})
			cur = p[i]
		}
		return true
	}
	for i := 1; i < len(asPath); i++ {
		x, y := asPath[i-1], asPath[i]
		l := w.pickLink(x, y, flow)
		if l == nil {
			return nil
		}
		exit, entry := l.A, l.B
		if exit.Router.AS != x {
			exit, entry = l.B, l.A
		}
		if !appendIntra(exit.Router) {
			return nil
		}
		hops = append(hops, hop{router: entry.Router, ingress: entry})
		cur = entry.Router
	}
	// Reach the router hosting the destination.
	hostRouter := dstAS.Routers[mix64(uint64(dstAddr))%uint64(len(dstAS.Routers))]
	if !appendIntra(hostRouter) {
		return nil
	}
	return hops
}
