package topo

import (
	"math/rand"
	"slices"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
)

// ASN renumbering for the metamorphic verification harness (DESIGN.md
// §10): MAP-IT never interprets ASN values beyond equality, sibling
// pooling, and the lowest-ASN tie-breaks of the election and the
// interning order — so inference commutes with any ORDER-PRESERVING
// bijection applied consistently to the BGP table, the sibling
// structure, the relationship dataset, and the IXP directory. The
// helpers below build such a bijection and push it through every input.

// AllASNs returns every ASN the world's public inputs can mention, in
// ascending order: the generated ASes plus the IXP route-server ASNs.
func (w *World) AllASNs() []inet.ASN {
	seen := make(map[inet.ASN]bool, len(w.ASes)+len(w.IXPs))
	for _, as := range w.ASes {
		seen[as.ASN] = true
	}
	for _, x := range w.IXPs {
		seen[x.ASN] = true
	}
	out := make([]inet.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// MonotoneASNMap builds a strictly increasing renumbering of asns
// (which must be sorted ascending): each ASN maps to a value above the
// previous image by a seed-derived gap, so relative order — and with it
// every lowest-ASN tie-break — is preserved while the concrete values
// all change.
func MonotoneASNMap(asns []inet.ASN, seed int64) map[inet.ASN]inet.ASN {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[inet.ASN]inet.ASN, len(asns))
	next := inet.ASN(1 + rng.Intn(50))
	for _, a := range asns {
		m[a] = next
		next += inet.ASN(1 + rng.Intn(97))
	}
	return m
}

// apply resolves an ASN through the map, passing unknown ASNs through
// unchanged (the noise model can reference only known ASNs, so a miss
// would indicate a harness bug — passing through keeps the remap total).
func apply(m map[inet.ASN]inet.ASN, a inet.ASN) inet.ASN {
	if b, ok := m[a]; ok {
		return b
	}
	return a
}

// RemapAnnouncements returns the announcements with every AS-path hop
// renumbered.
func RemapAnnouncements(anns []bgp.Announcement, m map[inet.ASN]inet.ASN) []bgp.Announcement {
	out := make([]bgp.Announcement, len(anns))
	for i, an := range anns {
		path := make([]inet.ASN, len(an.Path))
		for j, hop := range an.Path {
			path[j] = apply(m, hop)
		}
		out[i] = bgp.Announcement{Collector: an.Collector, Prefix: an.Prefix, Path: path}
	}
	return out
}

// RemapOrgs returns a sibling structure with the same groups under the
// renumbering.
func RemapOrgs(orgs *as2org.Orgs, m map[inet.ASN]inet.ASN) *as2org.Orgs {
	if orgs == nil {
		return nil
	}
	out := as2org.New()
	for _, g := range orgs.Groups() {
		first := apply(m, g[0])
		out.AddOrgMember(first, "")
		for _, a := range g[1:] {
			out.AddSiblingPair(first, apply(m, a))
		}
	}
	return out
}

// RemapRels returns a relationship dataset with every edge renumbered.
func RemapRels(rels *relation.Dataset, m map[inet.ASN]inet.ASN) *relation.Dataset {
	if rels == nil {
		return nil
	}
	out := relation.New()
	for _, e := range rels.Edges() {
		switch e.Rel {
		case relation.Provider:
			out.AddTransit(apply(m, e.A), apply(m, e.B))
		case relation.Peer:
			out.AddPeering(apply(m, e.A), apply(m, e.B))
		}
	}
	return out
}

// RemapIXP returns an IXP directory with the same prefixes and
// renumbered route-server ASNs.
func RemapIXP(dir *ixp.Directory, m map[inet.ASN]inet.ASN) *ixp.Directory {
	if dir == nil {
		return nil
	}
	out := ixp.New()
	dir.WalkPrefixes(func(p inet.Prefix, name string) bool {
		out.AddPrefix(p, name)
		return true
	})
	for _, a := range dir.ASNs() {
		name, _ := dir.ASNName(a)
		out.AddASN(apply(m, a), name)
	}
	return out
}
