package topo

import (
	"reflect"
	"slices"
	"testing"

	"mapit/internal/inet"
)

func TestAllASNsAndMonotoneMap(t *testing.T) {
	gen := SmallGenConfig()
	gen.Seed = 5
	w := Generate(gen)
	asns := w.AllASNs()
	if len(asns) == 0 {
		t.Fatal("no ASNs")
	}
	if !slices.IsSorted(asns) {
		t.Fatal("AllASNs not sorted")
	}
	for i := 1; i < len(asns); i++ {
		if asns[i] == asns[i-1] {
			t.Fatalf("duplicate ASN %d", asns[i])
		}
	}
	for _, x := range w.IXPs {
		if !slices.Contains(asns, x.ASN) {
			t.Fatalf("IXP ASN %d missing from AllASNs", x.ASN)
		}
	}
	m := MonotoneASNMap(asns, 99)
	if len(m) != len(asns) {
		t.Fatalf("map covers %d of %d ASNs", len(m), len(asns))
	}
	prev := inet.ASN(0)
	for _, a := range asns {
		img := m[a]
		if img <= prev {
			t.Fatalf("map not strictly increasing: %d -> %d after image %d", a, img, prev)
		}
		prev = img
	}
	// Distinct seeds give distinct renumberings (overwhelmingly likely).
	m2 := MonotoneASNMap(asns, 100)
	if reflect.DeepEqual(m, m2) {
		t.Error("seeds 99 and 100 produced identical maps")
	}
}

func TestRemapInputs(t *testing.T) {
	gen := SmallGenConfig()
	gen.Seed = 6
	w := Generate(gen)
	orgs, rels, dir := w.PublicInputs(DefaultNoiseConfig())
	m := MonotoneASNMap(w.AllASNs(), 7)

	ranns := RemapAnnouncements(w.Announcements, m)
	if len(ranns) != len(w.Announcements) {
		t.Fatalf("announcement count changed: %d != %d", len(ranns), len(w.Announcements))
	}
	for i, an := range w.Announcements {
		r := ranns[i]
		if r.Prefix != an.Prefix || r.Collector != an.Collector || len(r.Path) != len(an.Path) {
			t.Fatalf("announcement %d: non-path fields changed", i)
		}
		for j, hop := range an.Path {
			if want, ok := m[hop]; ok && r.Path[j] != want {
				t.Fatalf("announcement %d hop %d: %d -> %d, want %d", i, j, hop, r.Path[j], want)
			}
		}
	}

	rorgs := RemapOrgs(orgs, m)
	for _, g := range orgs.Groups() {
		if len(g) < 2 {
			continue
		}
		for _, a := range g[1:] {
			if !rorgs.SameOrg(m[g[0]], m[a]) {
				t.Fatalf("siblings %d,%d no longer pooled after remap", g[0], a)
			}
		}
	}
	if RemapOrgs(nil, m) != nil {
		t.Fatal("RemapOrgs(nil) should stay nil")
	}

	rrels := RemapRels(rels, m)
	for _, e := range rels.Edges() {
		want := e.Rel
		if got := rrels.Rel(m[e.A], m[e.B]); got != want {
			t.Fatalf("edge %d-%d (%v) remapped to %v", e.A, e.B, want, got)
		}
	}
	if len(rrels.Edges()) != len(rels.Edges()) {
		t.Fatalf("edge count changed: %d != %d", len(rrels.Edges()), len(rels.Edges()))
	}
	if RemapRels(nil, m) != nil {
		t.Fatal("RemapRels(nil) should stay nil")
	}

	rdir := RemapIXP(dir, m)
	if rdir.NumPrefixes() != dir.NumPrefixes() {
		t.Fatalf("prefix count changed: %d != %d", rdir.NumPrefixes(), dir.NumPrefixes())
	}
	dir.WalkPrefixes(func(p inet.Prefix, name string) bool {
		if got, ok := rdir.IXPOf(p.Base); !ok || got != name {
			t.Fatalf("prefix %v lost its IXP name after remap (%q, %v)", p, got, ok)
		}
		return true
	})
	for _, a := range dir.ASNs() {
		if !rdir.IsIXPASN(m[a]) {
			t.Fatalf("IXP ASN %d -> %d not registered after remap", a, m[a])
		}
	}
	if RemapIXP(nil, m) != nil {
		t.Fatal("RemapIXP(nil) should stay nil")
	}
}
