package topo

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
)

// GenConfig parameterises world generation. The zero value is unusable;
// start from DefaultGenConfig.
type GenConfig struct {
	Seed int64

	// Island shifts every identifier band — ASNs, the /16 address pool,
	// IXP ASNs and prefixes — so that worlds generated with distinct
	// Island values share no addresses or ASes and their traces can be
	// merged into one disconnected corpus (the multi-component seeds of
	// the partitioned-fixpoint harness). Island 0 is byte-identical to
	// the pre-knob generator; keep Island < 16 so the bands stay
	// disjoint and the address pool stays below multicast space.
	Island int

	// Hierarchy sizes.
	Tier1s    int
	Tier2s    int
	Regionals int
	Stubs     int

	// SiblingOrgs is the number of multi-AS organisations to plant.
	SiblingOrgs int
	// IXPs is the number of exchange points.
	IXPs int
	// Collectors is the number of BGP route collectors.
	Collectors int
	// Monitors is the number of traceroute vantage points.
	Monitors int

	// Slash31Frac is the fraction of point-to-point links numbered from
	// /31 prefixes (the paper measures 40.4%).
	Slash31Frac float64
	// CustomerSpaceTransitFrac is the probability a transit link is
	// numbered from the customer's space, violating the provider-space
	// convention (§3, §4.8).
	CustomerSpaceTransitFrac float64
	// RENCustomerSpaceFrac overrides CustomerSpaceTransitFrac for
	// transit links of the designated research-and-education network,
	// reproducing the Internet2 behaviour in Fig 1.
	RENCustomerSpaceFrac float64
	// IXPPeeringFrac is the share of peerings realised across an IXP
	// LAN instead of a private point-to-point link.
	IXPPeeringFrac float64

	// UnresponsiveRouterProb silences individual routers.
	UnresponsiveRouterProb float64
	// BuggyRouterProb gives routers the TTL=1-forwarding bug (§4.1).
	BuggyRouterProb float64
	// SilentBorderASFrac silences all border routers of a fraction of
	// ASes (§3.3).
	SilentBorderASFrac float64
	// NATStubFrac puts a fraction of stubs behind a NAT (§4.8): every
	// router in the stub replies with the stub-side interface address
	// of one of its provider links, and hosts never answer.
	NATStubFrac float64
	// QuietHostsStubFrac / QuietHostsRegionalFrac silence end hosts in
	// a fraction of edge networks, producing the low-visibility stubs
	// the §4.8 heuristic exists for.
	QuietHostsStubFrac     float64
	QuietHostsRegionalFrac float64
	// UnannouncedASFrac leaves a fraction of stub ASes out of BGP.
	UnannouncedASFrac float64
	// MOASFrac multi-homes a fraction of stub prefixes into a second
	// origin (a provider), producing MOAS prefixes.
	MOASFrac float64
	// CollectorVisibility is the probability that a given collector
	// sees a given AS's announcements.
	CollectorVisibility float64
}

// DefaultGenConfig returns the world used by the repository's experiment
// suite: a medium Internet whose statistics echo the paper's dataset
// (§4.1–§4.3) at laptop scale.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:                     1,
		Tier1s:                   8,
		Tier2s:                   30,
		Regionals:                80,
		Stubs:                    400,
		SiblingOrgs:              12,
		IXPs:                     6,
		Collectors:               12,
		Monitors:                 32,
		Slash31Frac:              0.40,
		CustomerSpaceTransitFrac: 0.15,
		RENCustomerSpaceFrac:     0.55,
		IXPPeeringFrac:           0.25,
		UnresponsiveRouterProb:   0.02,
		BuggyRouterProb:          0.01,
		SilentBorderASFrac:       0.03,
		NATStubFrac:              0.12,
		QuietHostsStubFrac:       0.60,
		QuietHostsRegionalFrac:   0.10,
		UnannouncedASFrac:        0.02,
		MOASFrac:                 0.03,
		CollectorVisibility:      0.95,
	}
}

// LargeGenConfig returns a bigger Internet for headline experiment runs:
// several times the default's edge networks and vantage points, giving
// the Tier 1 evaluation networks hundreds of links as in the paper.
func LargeGenConfig() GenConfig {
	c := DefaultGenConfig()
	c.Tier2s = 45
	c.Regionals = 150
	c.Stubs = 1200
	c.SiblingOrgs = 25
	c.IXPs = 10
	c.Monitors = 48
	return c
}

// SmallGenConfig returns a small world for fast tests.
func SmallGenConfig() GenConfig {
	c := DefaultGenConfig()
	c.Tier1s, c.Tier2s, c.Regionals, c.Stubs = 3, 6, 12, 40
	c.SiblingOrgs = 3
	c.IXPs = 2
	c.Collectors = 4
	c.Monitors = 6
	return c
}

// Special network keys in World.Special.
const (
	// SpecialREN is the research-and-education network (the Internet2
	// analogue: exact ground truth, customer-space transit links).
	SpecialREN = "REN"
	// SpecialT1A and SpecialT1B are the two large Tier 1 transit
	// networks (the Level 3 / TeliaSonera analogues: DNS-approximate
	// ground truth).
	SpecialT1A = "T1A"
	SpecialT1B = "T1B"
)

// genState carries generator scratch.
type genState struct {
	w        *World
	cfg      GenConfig
	rng      *rand.Rand
	next16   uint32 // next /16 candidate, as base address
	linkIdx  map[[2]inet.ASN][]*Link
	ptpAlloc map[*AS]*ptpAllocator
	special  map[string]*AS
}

// ptpAllocator hands out /30 and /31 prefixes from an AS's
// infrastructure half (x.y.0.0/17).
type ptpAllocator struct {
	base   inet.Addr
	cursor uint32
	limit  uint32
}

func (p *ptpAllocator) alloc(size uint32) inet.Addr {
	// Align.
	if p.cursor%size != 0 {
		p.cursor += size - p.cursor%size
	}
	a := p.base + inet.Addr(p.cursor)
	p.cursor += size
	if p.cursor > p.limit {
		panic("topo: AS infrastructure space exhausted")
	}
	return a
}

// islandASNBand is the ASN spacing between GenConfig.Island bands; wide
// enough that the tier starts (1, 100, 1000, 10000) and the IXP block
// (60000+) of the largest configs never cross into the next band.
const islandASNBand = 100000

// Generate builds a world from the configuration. Generation is fully
// deterministic in cfg (including Seed).
func Generate(cfg GenConfig) *World {
	g := &genState{
		w: &World{
			ByASN:  make(map[inet.ASN]*AS),
			Ifaces: make(map[inet.Addr]*Iface),
			Rels:   relation.New(),
			Orgs:   as2org.New(),
		},
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		// Island 0 allocates /16s from 16.0.0.0; each further island
		// starts its own 8.0.0.0/5-sized band (24.0.0.0, 32.0.0.0, …).
		next16:   uint32(16+8*cfg.Island) << 24,
		linkIdx:  make(map[[2]inet.ASN][]*Link),
		ptpAlloc: make(map[*AS]*ptpAllocator),
		special:  make(map[string]*AS),
	}
	g.w.cfg = cfg
	g.w.Directory = ixp.New()

	g.makeASes()
	g.makeRelationships()
	g.makeSiblings()
	g.makeRouters()
	g.makeIXPs()
	g.makeInterLinks()
	g.markArtifacts()
	g.makeAnnouncements()
	g.makeMonitors()

	g.w.routes = newRouteCache(g.w)
	g.w.linkIdx = g.linkIdx
	g.w.Special = g.special
	return g.w
}

func (g *genState) allocPrefix16() inet.Prefix {
	for {
		p := inet.Prefix{Base: inet.Addr(g.next16), Len: 16}
		g.next16 += 1 << 16
		if g.next16 >= 224<<24 {
			panic("topo: global /16 pool exhausted")
		}
		special := false
		for _, sp := range inet.SpecialPrefixes() {
			if p.Overlaps(sp) {
				special = true
				break
			}
		}
		if !special {
			return p
		}
	}
}

func (g *genState) newAS(asn inet.ASN, tier Tier) *AS {
	a := &AS{ASN: asn, Tier: tier, Org: fmt.Sprintf("ORG-%d", asn)}
	a.Prefixes = []inet.Prefix{g.allocPrefix16()}
	if tier == Tier1 {
		a.Prefixes = append(a.Prefixes, g.allocPrefix16())
	}
	g.ptpAlloc[a] = &ptpAllocator{base: a.Prefixes[0].Base, limit: 1 << 15}
	g.w.ASes = append(g.w.ASes, a)
	g.w.ByASN[asn] = a
	return a
}

// hostSpace is the AS's end-system half (x.y.128.0/17 of the first /16).
func (a *AS) hostSpace() inet.Prefix {
	return inet.Prefix{Base: a.Prefixes[0].Base + 1<<15, Len: 17}
}

// HostAddr deterministically yields destination addresses inside the
// AS's host space.
func (a *AS) HostAddr(n uint32) inet.Addr {
	return a.hostSpace().Base + inet.Addr(n%(1<<15-2)) + 1
}

func (g *genState) makeASes() {
	// Each island claims a 100000-wide ASN band: tiers at base+1,
	// base+100, base+1000, base+10000 and IXPs at base+60000 all fit
	// with room for the largest configs.
	base := inet.ASN(g.cfg.Island) * islandASNBand
	asn := base + 1
	for i := 0; i < g.cfg.Tier1s; i++ {
		g.newAS(asn, Tier1)
		asn++
	}
	asn = base + 100
	for i := 0; i < g.cfg.Tier2s; i++ {
		g.newAS(asn, Tier2)
		asn++
	}
	asn = base + 1000
	for i := 0; i < g.cfg.Regionals; i++ {
		g.newAS(asn, Regional)
		asn++
	}
	asn = base + 10000
	for i := 0; i < g.cfg.Stubs; i++ {
		g.newAS(asn, Stub)
		asn++
	}
	tier1s := g.byTier(Tier1)
	tier2s := g.byTier(Tier2)
	if len(tier1s) >= 2 {
		g.special[SpecialT1A] = tier1s[0]
		g.special[SpecialT1B] = tier1s[1]
	}
	if len(tier2s) > 0 {
		g.special[SpecialREN] = tier2s[0]
	}
}

func (g *genState) byTier(t Tier) []*AS {
	var out []*AS
	for _, a := range g.w.ASes {
		if a.Tier == t {
			out = append(out, a)
		}
	}
	return out
}

func (g *genState) addTransit(provider, customer *AS) {
	for _, c := range provider.customers {
		if c == customer {
			return
		}
	}
	provider.customers = append(provider.customers, customer)
	customer.providers = append(customer.providers, provider)
	g.w.Rels.AddTransit(provider.ASN, customer.ASN)
}

func (g *genState) addPeering(a, b *AS) {
	if a == b {
		return
	}
	for _, p := range a.peers {
		if p == b {
			return
		}
	}
	a.peers = append(a.peers, b)
	b.peers = append(b.peers, a)
	g.w.Rels.AddPeering(a.ASN, b.ASN)
}

func (g *genState) pick(list []*AS) *AS { return list[g.rng.Intn(len(list))] }

func (g *genState) makeRelationships() {
	tier1s := g.byTier(Tier1)
	tier2s := g.byTier(Tier2)
	regionals := g.byTier(Regional)
	stubs := g.byTier(Stub)
	ren := g.special[SpecialREN]

	// Tier 1 clique.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			g.addPeering(a, b)
		}
	}
	// Tier 2: 1-3 Tier 1 providers, peerings among Tier 2s.
	for _, a := range tier2s {
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			g.addTransit(g.pick(tier1s), a)
		}
	}
	for i, a := range tier2s {
		for _, b := range tier2s[i+1:] {
			p := 0.12
			if a == ren || b == ren {
				p = 0.30 // the R&E network peers widely
			}
			if g.rng.Float64() < p {
				g.addPeering(a, b)
			}
		}
	}
	// Regionals: 1-2 Tier 2 providers (the REN attracts R&E regionals),
	// sparse peerings.
	for _, a := range regionals {
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			if ren != nil && g.rng.Float64() < 0.20 {
				g.addTransit(ren, a)
			} else {
				g.addTransit(g.pick(tier2s), a)
			}
		}
	}
	for i, a := range regionals {
		for _, b := range regionals[i+1:] {
			if g.rng.Float64() < 0.01 {
				g.addPeering(a, b)
			}
		}
	}
	// Regionals occasionally buy transit from a Tier 1 directly.
	for _, a := range regionals {
		if g.rng.Float64() < 0.15 {
			g.addTransit(g.pick(tier1s), a)
		}
	}
	// Stubs: 1-3 providers from regionals, Tier 2s and Tier 1s (large
	// transit networks sell to everyone — the paper's Level 3 connects
	// to many stubs directly, §5.5).
	upstream := append(append([]*AS(nil), regionals...), regionals...)
	upstream = append(upstream, tier2s...)
	for i := 0; i < 4; i++ {
		upstream = append(upstream, tier1s...)
	}
	for _, a := range stubs {
		n := 1
		r := g.rng.Float64()
		if r > 0.6 {
			n = 2
		}
		if r > 0.9 {
			n = 3
		}
		for i := 0; i < n; i++ {
			g.addTransit(g.pick(upstream), a)
		}
	}
}

func (g *genState) makeSiblings() {
	// Seed every AS's org, then merge pairs into multi-AS organisations
	// (preferring Tier 2 / regional, like real sibling sets).
	for _, a := range g.w.ASes {
		g.w.Orgs.AddOrgMember(a.ASN, a.Org)
	}
	candidates := append(g.byTier(Tier2), g.byTier(Regional)...)
	for i := 0; i < g.cfg.SiblingOrgs && len(candidates) >= 2; i++ {
		a := g.pick(candidates)
		b := g.pick(candidates)
		if a == b || a == g.special[SpecialREN] || b == g.special[SpecialREN] {
			continue
		}
		b.Org = a.Org
		g.w.Orgs.AddSiblingPair(a.ASN, b.ASN)
	}
}

func (g *genState) routersFor(a *AS) int {
	switch a.Tier {
	case Tier1:
		return 8 + g.rng.Intn(4)
	case Tier2:
		return 4 + g.rng.Intn(3)
	case Regional:
		return 3 + g.rng.Intn(2)
	default:
		// Nearly half the stubs have a border router plus an internal
		// router; combined with silent end hosts this is the
		// low-visibility single-neighbour pattern §4.8 targets.
		if g.rng.Float64() < 0.45 {
			return 2
		}
		return 1
	}
}

func (g *genState) makeRouters() {
	for _, a := range g.w.ASes {
		n := g.routersFor(a)
		for i := 0; i < n; i++ {
			r := &Router{ID: g.w.nextID, AS: a, intra: make(map[*Router]*Iface)}
			g.w.nextID++
			a.Routers = append(a.Routers, r)
		}
		// Intra topology: ring plus random chords.
		rs := a.Routers
		for i := 0; i < len(rs)-1; i++ {
			g.makeIntraLink(a, rs[i], rs[i+1])
		}
		if len(rs) > 2 {
			g.makeIntraLink(a, rs[len(rs)-1], rs[0])
			chords := len(rs) / 3
			for i := 0; i < chords; i++ {
				x, y := g.rng.Intn(len(rs)), g.rng.Intn(len(rs))
				if x != y && rs[x].intra[rs[y]] == nil {
					g.makeIntraLink(a, rs[x], rs[y])
				}
			}
		}
	}
}

// makePtP numbers a point-to-point link from owner's space and wires the
// two interfaces.
func (g *genState) makePtP(kind LinkKind, owner *AS, ra, rb *Router) *Link {
	slash31 := g.rng.Float64() < g.cfg.Slash31Frac
	al := g.ptpAlloc[owner]
	var addrA, addrB inet.Addr
	if slash31 {
		// /31s are carved from their own 4-aligned blocks so that two
		// unrelated /31 links never share one /30 — dense packing would
		// make the §4.2 other-side heuristic cross-pair neighbouring
		// links whenever both far sides are invisible.
		base := al.alloc(4)
		addrA, addrB = base, base+1
	} else {
		base := al.alloc(4)
		addrA, addrB = base+1, base+2
	}
	l := &Link{Kind: kind, PrefixOwner: owner, Slash31: slash31}
	l.A = g.newIface(addrA, ra, l, owner.ASN)
	l.B = g.newIface(addrB, rb, l, owner.ASN)
	g.w.Links = append(g.w.Links, l)
	return l
}

func (g *genState) newIface(addr inet.Addr, r *Router, l *Link, space inet.ASN) *Iface {
	i := &Iface{Addr: addr, Router: r, Link: l, SpaceAS: space}
	r.Ifaces = append(r.Ifaces, i)
	g.w.Ifaces[addr] = i
	return i
}

func (g *genState) makeIntraLink(a *AS, ra, rb *Router) {
	l := g.makePtP(IntraLink, a, ra, rb)
	ra.intra[rb] = l.A
	rb.intra[ra] = l.B
}

func (g *genState) makeIXPs() {
	// Island k's exchange LANs live in 185.(1+k).0.0/16 with ASNs in
	// its own band, disjoint from every other island's.
	base := inet.MustParseAddr("185.1.0.0") + inet.Addr(g.cfg.Island)<<16
	for i := 0; i < g.cfg.IXPs; i++ {
		name := fmt.Sprintf("IX-%d", i+1)
		if g.cfg.Island > 0 {
			name = fmt.Sprintf("IX-%d-%d", g.cfg.Island, i+1)
		}
		x := &IXP{
			Name:   name,
			ASN:    inet.ASN(60000 + g.cfg.Island*islandASNBand + i),
			Prefix: inet.Prefix{Base: base + inet.Addr(i)<<10, Len: 22},
		}
		g.w.IXPs = append(g.w.IXPs, x)
		g.w.Directory.AddPrefix(x.Prefix, x.Name)
		g.w.Directory.AddASN(x.ASN, x.Name)
	}
}

// ixpIface returns (creating if needed) the router's interface on the
// exchange LAN: one address per router per IXP, shared by all its
// peerings there (multipoint).
func (g *genState) ixpIface(x *IXP, r *Router) *Iface {
	for _, i := range r.Ifaces {
		if i.Link != nil && i.Link.Kind == IXPLink && x.Prefix.Contains(i.Addr) {
			return i
		}
	}
	x.next++
	addr := x.Prefix.Base + inet.Addr(x.next)
	i := &Iface{Addr: addr, Router: r, SpaceAS: 0}
	r.Ifaces = append(r.Ifaces, i)
	g.w.Ifaces[addr] = i
	return i
}

func linkKey(a, b inet.ASN) [2]inet.ASN {
	if a <= b {
		return [2]inet.ASN{a, b}
	}
	return [2]inet.ASN{b, a}
}

// borderRouter picks a deterministic-random router of the AS to terminate
// an inter-AS link.
func (g *genState) borderRouter(a *AS) *Router {
	return a.Routers[g.rng.Intn(len(a.Routers))]
}

func (g *genState) parallelLinks(a, b *AS) int {
	if a.Tier == Tier1 && b.Tier == Tier1 {
		return 1 + g.rng.Intn(3)
	}
	if a.Tier <= Tier2 && b.Tier <= Tier2 {
		if g.rng.Float64() < 0.3 {
			return 2
		}
	}
	return 1
}

func (g *genState) makeInterLinks() {
	// Deterministic edge ordering: walk ASes in generation order.
	ren := g.special[SpecialREN]
	for _, a := range g.w.ASes {
		// Transit links: a as provider.
		for _, c := range a.customers {
			n := g.parallelLinks(a, c)
			for i := 0; i < n; i++ {
				owner := a
				frac := g.cfg.CustomerSpaceTransitFrac
				if a == ren {
					frac = g.cfg.RENCustomerSpaceFrac
				}
				if g.rng.Float64() < frac {
					owner = c
				}
				ra, rb := g.borderRouter(a), g.borderRouter(c)
				l := g.makePtP(InterLink, owner, ra, rb)
				ra.interIfaces = append(ra.interIfaces, l.A)
				rb.interIfaces = append(rb.interIfaces, l.B)
				g.linkIdx[linkKey(a.ASN, c.ASN)] = append(g.linkIdx[linkKey(a.ASN, c.ASN)], l)
			}
		}
	}
	for _, a := range g.w.ASes {
		// Peerings: realised once per unordered pair (a.ASN < peer).
		for _, p := range a.peers {
			if a.ASN >= p.ASN {
				continue
			}
			if len(g.w.IXPs) > 0 && g.rng.Float64() < g.cfg.IXPPeeringFrac {
				x := g.w.IXPs[g.rng.Intn(len(g.w.IXPs))]
				ra, rb := g.borderRouter(a), g.borderRouter(p)
				ia, ib := g.ixpIface(x, ra), g.ixpIface(x, rb)
				l := &Link{Kind: IXPLink, A: ia, B: ib}
				if ia.Link == nil {
					ia.Link = l
				}
				if ib.Link == nil {
					ib.Link = l
				}
				ra.interIfaces = append(ra.interIfaces, ia)
				rb.interIfaces = append(rb.interIfaces, ib)
				g.w.Links = append(g.w.Links, l)
				g.linkIdx[linkKey(a.ASN, p.ASN)] = append(g.linkIdx[linkKey(a.ASN, p.ASN)], l)
				continue
			}
			n := g.parallelLinks(a, p)
			for i := 0; i < n; i++ {
				owner := a
				if g.rng.Float64() < 0.5 {
					owner = p
				}
				ra, rb := g.borderRouter(a), g.borderRouter(p)
				l := g.makePtP(InterLink, owner, ra, rb)
				ra.interIfaces = append(ra.interIfaces, l.A)
				rb.interIfaces = append(rb.interIfaces, l.B)
				g.linkIdx[linkKey(a.ASN, p.ASN)] = append(g.linkIdx[linkKey(a.ASN, p.ASN)], l)
			}
		}
	}
}

func (g *genState) markArtifacts() {
	for _, a := range g.w.ASes {
		switch a.Tier {
		case Stub:
			if g.rng.Float64() < g.cfg.QuietHostsStubFrac {
				a.QuietHosts = true
			}
		case Regional:
			if g.rng.Float64() < g.cfg.QuietHostsRegionalFrac {
				a.QuietHosts = true
			}
		}
		if a.Tier == Stub && g.rng.Float64() < g.cfg.NATStubFrac {
			// The NAT device's WAN interface is the stub-side end of
			// one of its provider links; everything in the stub answers
			// from it and hosts never answer.
			var candidates []*Iface
			for _, r := range a.Routers {
				for _, i := range r.interIfaces {
					if i.Link != nil && i.Link.Kind == InterLink {
						candidates = append(candidates, i)
					}
				}
			}
			if len(candidates) > 0 {
				a.NAT = true
				a.QuietHosts = true
				a.NATAddr = candidates[g.rng.Intn(len(candidates))].Addr
			}
		}
		if a.Tier != Tier1 && g.rng.Float64() < g.cfg.SilentBorderASFrac {
			a.SilentBorders = true
		}
		if a.Tier == Stub && g.rng.Float64() < g.cfg.UnannouncedASFrac {
			a.Unannounced = true
		}
		for _, r := range a.Routers {
			if g.rng.Float64() < g.cfg.UnresponsiveRouterProb {
				r.Unresponsive = true
			}
			if g.rng.Float64() < g.cfg.BuggyRouterProb {
				r.BuggyTTL = true
			}
		}
	}
}

func (g *genState) makeAnnouncements() {
	for _, a := range g.w.ASes {
		if a.Unannounced {
			continue
		}
		moas := g.rng.Float64() < g.cfg.MOASFrac && len(a.providers) > 0 && a.Tier == Stub
		var second *AS
		if moas {
			second = a.providers[g.rng.Intn(len(a.providers))]
		}
		for _, p := range a.Prefixes {
			for c := 0; c < g.cfg.Collectors; c++ {
				if g.rng.Float64() >= g.cfg.CollectorVisibility {
					continue
				}
				collector := fmt.Sprintf("rc%02d", c)
				g.w.Announcements = append(g.w.Announcements, bgp.Announcement{
					Collector: collector,
					Prefix:    p,
					Path:      []inet.ASN{a.ASN},
				})
				if moas && g.rng.Float64() < 0.5 {
					g.w.Announcements = append(g.w.Announcements, bgp.Announcement{
						Collector: collector,
						Prefix:    p,
						Path:      []inet.ASN{second.ASN},
					})
				}
			}
		}
	}
	// A minority of IXPs announce their LAN from the exchange ASN.
	for i, x := range g.w.IXPs {
		if i%2 == 0 {
			g.w.Announcements = append(g.w.Announcements, bgp.Announcement{
				Collector: "rc00", Prefix: x.Prefix, Path: []inet.ASN{x.ASN},
			})
		}
	}
}

func (g *genState) makeMonitors() {
	// Vantage points live in stubs, regionals and the REN (the paper's
	// Ark monitors are mostly in edge networks; Internet2 hosts one).
	var pool []*AS
	pool = append(pool, g.byTier(Stub)...)
	pool = append(pool, g.byTier(Regional)...)
	if ren := g.special[SpecialREN]; ren != nil {
		g.addMonitor(ren)
	}
	for len(g.w.Monitors) < g.cfg.Monitors && len(pool) > 0 {
		g.addMonitor(g.pick(pool))
	}
	slices.SortFunc(g.w.Monitors, func(a, b *Monitor) int { return cmp.Compare(a.Name, b.Name) })
}

func (g *genState) addMonitor(a *AS) {
	r := a.Routers[g.rng.Intn(len(a.Routers))]
	// The host-facing gateway answers from RFC 1918 space, like the
	// residential/hosting CPE most Ark monitors sit behind; private
	// first hops are excluded from neighbour sets anyway (§4.3).
	addr := inet.MustParseAddr("192.168.0.1") + inet.Addr(len(g.w.Monitors))<<8
	gw := &Iface{Addr: addr, Router: r, SpaceAS: 0}
	r.Ifaces = append(r.Ifaces, gw)
	g.w.Ifaces[addr] = gw
	m := &Monitor{
		Name:    fmt.Sprintf("mon-%03d-as%d", len(g.w.Monitors), a.ASN),
		AS:      a,
		Router:  r,
		Gateway: gw,
	}
	g.w.Monitors = append(g.w.Monitors, m)
}
