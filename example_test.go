package mapit_test

import (
	"fmt"
	"strings"

	"mapit"
)

// The paper's Fig 2 scenario in miniature: 109.105.98.10 is numbered
// from AS2603 but sits on an AS11537 router; aggregating traces reveals
// the boundary.
func ExampleInfer() {
	traces, _ := mapit.ReadTraces(strings.NewReader(`
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
`))
	rib, _ := mapit.ReadRIB(strings.NewReader(`
rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
`))
	res, _ := mapit.Infer(traces, mapit.Config{IP2AS: rib, F: 0.5})
	for _, inf := range res.HighConfidence() {
		a, b := inf.Link()
		fmt.Printf("%v is an inter-AS link interface between %v and %v\n", inf.Addr, a, b)
	}
	// Output:
	// 109.105.98.10 is an inter-AS link interface between AS2603 and AS11537
	// 199.109.5.1 is an inter-AS link interface between AS3754 and AS11537
}

// Streaming ingestion for corpora that do not fit in memory: feed traces
// to a Collector one at a time and run over the collected evidence.
func ExampleCollector() {
	rib, _ := mapit.ReadRIB(strings.NewReader(`
rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
`))
	c := mapit.NewCollector()
	for i := 0; i < 3; i++ {
		dst, _ := mapit.ParseAddr("198.71.200.1")
		h1, _ := mapit.ParseAddr("109.105.98.10")
		h2, _ := mapit.ParseAddr(fmt.Sprintf("198.71.45.%d", 2+i*4))
		c.Add(mapit.Trace{Monitor: "m", Dst: dst, Hops: []mapit.Hop{
			{Addr: h1, QuotedTTL: 1}, {Addr: h2, QuotedTTL: 1},
		}})
	}
	res, _ := mapit.InferEvidence(c.Evidence(), mapit.Config{IP2AS: rib, F: 0.5})
	fmt.Println(len(res.HighConfidence()), "inference(s) from", c.Traces(), "streamed traces")
	// Output:
	// 1 inference(s) from 3 streamed traces
}

// Aggregating inferences into AS-level links.
func ExampleResult_Links() {
	traces, _ := mapit.ReadTraces(strings.NewReader(`
m|199.109.200.1|109.105.98.10 198.71.45.2
m|199.109.200.2|109.105.98.10 198.71.46.180
`))
	rib, _ := mapit.ReadRIB(strings.NewReader(`
rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
`))
	res, _ := mapit.Infer(traces, mapit.Config{IP2AS: rib, F: 0.5})
	for _, l := range res.Links() {
		fmt.Printf("%v <-> %v evidenced by %d interface(s)\n", l.A, l.B, len(l.Addrs))
	}
	// Output:
	// AS2603 <-> AS11537 evidenced by 1 interface(s)
}
