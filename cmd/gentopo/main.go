// Command gentopo generates a synthetic Internet, runs the traceroute
// engine over it, and writes a complete MAP-IT-ready dataset to a
// directory:
//
//	traces.txt   traceroute dataset            (mapit -traces)
//	rib.txt      multi-collector BGP RIB dump  (mapit -rib)
//	orgs.txt     sibling dataset               (mapit -orgs)
//	rels.txt     AS relationship dataset       (mapit -rels)
//	ixp.txt      IXP directory                 (mapit -ixp)
//	truth.tsv    exact per-interface ground truth (for evaluation)
//
// The metadata files are the *noisy public view* (incomplete sibling
// lists, relationship edges and IXP prefixes, §5); truth.tsv carries the
// exact ground truth.
//
// With -timestamps the engine stamps every trace with a deterministic
// per-monitor probe time and the corpus is written sorted by time — as
// MTRC v4 for -format binary, JSONL with a "time" field for json — for
// replay through mapit -window or mapitd's windowed ingest.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"mapit"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

// genOpts carries every generation knob, mirroring the flags.
type genOpts struct {
	out        string
	seed       int64
	small      bool
	dests      int
	cleanMeta  bool
	format     string
	timestamps bool
	timeBase   int64
	timeStep   int64
	timeJitter int64
}

func main() {
	var o genOpts
	flag.StringVar(&o.out, "out", "dataset", "output directory")
	flag.Int64Var(&o.seed, "seed", 1, "generation seed")
	flag.BoolVar(&o.small, "small", false, "generate the small test world")
	flag.IntVar(&o.dests, "dests", 0, "destinations per monitor (0 = default)")
	flag.BoolVar(&o.cleanMeta, "clean-meta", false, "write exact (noise-free) metadata instead of the public view")
	flag.StringVar(&o.format, "format", "text", "trace file format: text, json or binary")
	flag.BoolVar(&o.timestamps, "timestamps", false, "stamp traces with deterministic per-monitor probe times and sort the corpus by time (json or binary; binary writes MTRC v4)")
	flag.Int64Var(&o.timeBase, "time-base", 1_700_000_000, "first probe epoch in seconds (with -timestamps)")
	flag.Int64Var(&o.timeStep, "time-step", 10, "per-monitor probe cadence in seconds (with -timestamps)")
	flag.Int64Var(&o.timeJitter, "time-jitter", 3, "per-probe jitter bound in seconds (with -timestamps)")
	flag.Parse()

	w, n, err := generate(o)
	fatal(err)
	fmt.Println(w.String())
	fmt.Printf("wrote %d traces and metadata to %s\n", n, o.out)
}

// generate builds the world and writes the full dataset directory,
// returning the trace count. Deterministic in o; separated from main so
// tests can run the whole command body against a temp directory.
//
// The binary format streams: traces flow from the engine straight into
// the v3 block writer one at a time, so -dests sized for 10M+-trace
// corpora runs in constant memory. Text and JSON (line-oriented debug
// formats) still materialise the dataset.
func generate(o genOpts) (*mapit.World, int64, error) {
	gen := mapit.DefaultWorldConfig()
	if o.small {
		gen = mapit.SmallWorldConfig()
	}
	gen.Seed = o.seed
	w := mapit.GenerateWorld(gen)

	tc := mapit.DefaultTraceConfig()
	tc.Seed = o.seed + 1
	if o.dests > 0 {
		tc.DestsPerMonitor = o.dests
	}
	if o.timestamps {
		if o.format == "text" {
			return nil, 0, fmt.Errorf("-timestamps needs a format that carries times; use -format json or binary")
		}
		tc.Timestamps = true
		tc.TimeBase = o.timeBase
		tc.TimeStep = o.timeStep
		tc.TimeJitter = o.timeJitter
	}

	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return nil, 0, err
	}
	write := func(name string, fn func(io.Writer) error) error {
		return writeFile(o.out, name, fn)
	}
	var n int64
	var err error
	switch {
	case o.format == "text":
		ds := w.GenTraces(tc)
		n = int64(len(ds.Traces))
		err = write("traces.txt", func(f io.Writer) error { return trace.Write(f, ds) })
	case o.format == "json":
		ds := w.GenTraces(tc)
		sortByTime(ds, o.timestamps)
		n = int64(len(ds.Traces))
		err = write("traces.jsonl", func(f io.Writer) error { return trace.WriteJSON(f, ds) })
	case o.format == "binary" && o.timestamps:
		// The v4 block format requires globally non-decreasing
		// timestamps, and the engine emits monitor-major order — so the
		// timestamped binary path materialises, sorts, and encodes.
		ds := w.GenTraces(tc)
		sortByTime(ds, true)
		n = int64(len(ds.Traces))
		err = write("traces.bin", func(f io.Writer) error { return trace.WriteBinaryBlocksV4(f, ds, 0) })
	case o.format == "binary":
		n, err = streamBinary(o.out, w, tc)
	default:
		err = fmt.Errorf("unknown -format %q", o.format)
	}
	if err != nil {
		return nil, 0, err
	}
	if err := write("rib.txt", func(f io.Writer) error {
		return bgp.WriteRIB(f, w.Announcements)
	}); err != nil {
		return nil, 0, err
	}

	orgs, rels, dir := w.Orgs, w.Rels, w.Directory
	if !o.cleanMeta {
		noise := mapit.DefaultMetaNoise()
		noise.Seed = o.seed + 2
		orgs, rels, dir = w.PublicInputs(noise)
	}
	for _, step := range []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"orgs.txt", orgs.Write},
		{"rels.txt", rels.Write},
		{"ixp.txt", dir.Write},
		{"truth.tsv", func(f io.Writer) error { return writeTruth(f, w) }},
	} {
		if err := write(step.name, step.fn); err != nil {
			return nil, 0, err
		}
	}
	return w, n, nil
}

// sortByTime stable-sorts the corpus by timestamp when enabled, so the
// engine's per-monitor probe order breaks ties deterministically and
// replay consumers (mapit -window, mapitd windowed ingest) see events
// in time order.
func sortByTime(ds *trace.Dataset, enabled bool) {
	if !enabled {
		return
	}
	slices.SortStableFunc(ds.Traces, func(a, b trace.Trace) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		}
		return 0
	})
}

// streamBinary runs the traceroute engine and writes traces.bin in the
// v3 block format without ever materialising the corpus.
func streamBinary(dir string, w *mapit.World, tc mapit.TraceConfig) (int64, error) {
	f, err := os.Create(filepath.Join(dir, "traces.bin"))
	if err != nil {
		return 0, err
	}
	bw, err := trace.NewBlockWriter(f, 0)
	if err != nil {
		f.Close()
		return 0, err
	}
	var werr error
	w.StreamTraces(tc, func(t trace.Trace) bool {
		werr = bw.Add(t)
		return werr == nil
	})
	if werr == nil {
		werr = bw.Flush()
	}
	if werr != nil {
		f.Close()
		return 0, werr
	}
	return bw.Traces(), f.Close()
}

func writeTruth(f io.Writer, w *mapit.World) error {
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "# addr\trouter_as\tspace_as\tinter_as\tixp\tconnected\tother_side")
	truth := w.Truth()
	addrs := make([]inet.Addr, 0, len(truth))
	for a := range truth {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		t := truth[a]
		conn := ""
		for i, c := range t.ConnectedASes {
			if i > 0 {
				conn += ","
			}
			conn += fmt.Sprint(uint32(c))
		}
		if conn == "" {
			conn = "-"
		}
		os := "-"
		if !t.OtherSide.IsZero() {
			os = t.OtherSide.String()
		}
		fmt.Fprintf(bw, "%s\t%d\t%d\t%v\t%v\t%s\t%s\n",
			a, uint32(t.RouterAS), uint32(t.SpaceAS), t.InterAS, t.IXP, conn, os)
	}
	return bw.Flush()
}

func writeFile(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gentopo:", err)
		os.Exit(1)
	}
}
