// Command gentopo generates a synthetic Internet, runs the traceroute
// engine over it, and writes a complete MAP-IT-ready dataset to a
// directory:
//
//	traces.txt   traceroute dataset            (mapit -traces)
//	rib.txt      multi-collector BGP RIB dump  (mapit -rib)
//	orgs.txt     sibling dataset               (mapit -orgs)
//	rels.txt     AS relationship dataset       (mapit -rels)
//	ixp.txt      IXP directory                 (mapit -ixp)
//	truth.tsv    exact per-interface ground truth (for evaluation)
//
// The metadata files are the *noisy public view* (incomplete sibling
// lists, relationship edges and IXP prefixes, §5); truth.tsv carries the
// exact ground truth.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"mapit"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

func main() {
	var (
		out    = flag.String("out", "dataset", "output directory")
		seed   = flag.Int64("seed", 1, "generation seed")
		small  = flag.Bool("small", false, "generate the small test world")
		dests  = flag.Int("dests", 0, "destinations per monitor (0 = default)")
		clean  = flag.Bool("clean-meta", false, "write exact (noise-free) metadata instead of the public view")
		format = flag.String("format", "text", "trace file format: text, json or binary")
	)
	flag.Parse()

	gen := mapit.DefaultWorldConfig()
	if *small {
		gen = mapit.SmallWorldConfig()
	}
	gen.Seed = *seed
	w := mapit.GenerateWorld(gen)

	tc := mapit.DefaultTraceConfig()
	tc.Seed = *seed + 1
	if *dests > 0 {
		tc.DestsPerMonitor = *dests
	}
	ds := w.GenTraces(tc)

	fatal(os.MkdirAll(*out, 0o755))
	switch *format {
	case "text":
		writeFile(*out, "traces.txt", func(f io.Writer) error { return trace.Write(f, ds) })
	case "json":
		writeFile(*out, "traces.jsonl", func(f io.Writer) error { return trace.WriteJSON(f, ds) })
	case "binary":
		writeFile(*out, "traces.bin", func(f io.Writer) error { return trace.WriteBinary(f, ds) })
	default:
		fatal(fmt.Errorf("unknown -format %q", *format))
	}
	writeFile(*out, "rib.txt", func(f io.Writer) error {
		return bgp.WriteRIB(f, w.Announcements)
	})

	orgs, rels, dir := w.Orgs, w.Rels, w.Directory
	if !*clean {
		noise := mapit.DefaultMetaNoise()
		noise.Seed = *seed + 2
		orgs, rels, dir = w.PublicInputs(noise)
	}
	writeFile(*out, "orgs.txt", orgs.Write)
	writeFile(*out, "rels.txt", rels.Write)
	writeFile(*out, "ixp.txt", dir.Write)

	writeFile(*out, "truth.tsv", func(f io.Writer) error {
		return writeTruth(f, w)
	})

	fmt.Println(w.String())
	fmt.Printf("wrote %d traces and metadata to %s\n", len(ds.Traces), *out)
}

func writeTruth(f io.Writer, w *mapit.World) error {
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "# addr\trouter_as\tspace_as\tinter_as\tixp\tconnected\tother_side")
	truth := w.Truth()
	addrs := make([]inet.Addr, 0, len(truth))
	for a := range truth {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		t := truth[a]
		conn := ""
		for i, c := range t.ConnectedASes {
			if i > 0 {
				conn += ","
			}
			conn += fmt.Sprint(uint32(c))
		}
		if conn == "" {
			conn = "-"
		}
		os := "-"
		if !t.OtherSide.IsZero() {
			os = t.OtherSide.String()
		}
		fmt.Fprintf(bw, "%s\t%d\t%d\t%v\t%v\t%s\t%s\n",
			a, uint32(t.RouterAS), uint32(t.SpaceAS), t.InterAS, t.IXP, conn, os)
	}
	return bw.Flush()
}

func writeFile(dir, name string, fn func(io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	fatal(err)
	fatal(fn(f))
	fatal(f.Close())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gentopo:", err)
		os.Exit(1)
	}
}
