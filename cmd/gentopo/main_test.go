package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mapit"
)

// TestGenerateRoundTrip is the end-to-end smoke test for the command:
// generate a small dataset in every trace format, parse every emitted
// file back through the same readers cmd/mapit uses, and run an audited
// inference over the result.
func TestGenerateRoundTrip(t *testing.T) {
	for _, format := range []string{"text", "json", "binary"} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			w, n, err := generate(genOpts{
				out: dir, seed: 3, small: true, dests: 120, format: format,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("generated no traces")
			}

			traceFile := map[string]string{
				"text": "traces.txt", "json": "traces.jsonl", "binary": "traces.bin",
			}[format]
			for _, name := range []string{traceFile, "rib.txt", "orgs.txt", "rels.txt", "ixp.txt", "truth.tsv"} {
				fi, err := os.Stat(filepath.Join(dir, name))
				if err != nil {
					t.Fatalf("missing output %s: %v", name, err)
				}
				if fi.Size() == 0 {
					t.Fatalf("output %s is empty", name)
				}
			}

			f, err := os.Open(filepath.Join(dir, traceFile))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var parsed *mapit.Dataset
			switch format {
			case "text":
				parsed, err = mapit.ReadTraces(f)
			case "json":
				parsed, err = mapit.ReadTracesJSON(f)
			case "binary":
				parsed, err = mapit.ReadTracesBinary(f)
			}
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(parsed.Traces)) != n {
				t.Fatalf("round-trip lost traces: wrote %d, read %d", n, len(parsed.Traces))
			}

			table, err := mapit.ReadRIBFile(filepath.Join(dir, "rib.txt"))
			if err != nil {
				t.Fatal(err)
			}
			orgs, err := mapit.ReadOrgsFile(filepath.Join(dir, "orgs.txt"))
			if err != nil {
				t.Fatal(err)
			}
			rels, err := mapit.ReadRelationshipsFile(filepath.Join(dir, "rels.txt"))
			if err != nil {
				t.Fatal(err)
			}
			ixpDir, err := mapit.ReadIXPFile(filepath.Join(dir, "ixp.txt"))
			if err != nil {
				t.Fatal(err)
			}

			res, err := mapit.Infer(parsed, mapit.Config{
				IP2AS: table, Orgs: orgs, Rels: rels, IXP: ixpDir,
				F: 0.5, Workers: 2,
				Audit: &mapit.AuditChecker{Mode: mapit.AuditExhaustive},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Inferences) == 0 {
				t.Fatal("inference over the generated dataset found nothing")
			}
			if !res.Audit.Ok() {
				t.Fatalf("audit violations on generated dataset: %v", res.Audit.Violations)
			}
			if len(w.ASes) == 0 {
				t.Fatal("world has no ASes")
			}
		})
	}
}

// TestGenerateRejectsUnknownFormat pins the error path.
func TestGenerateRejectsUnknownFormat(t *testing.T) {
	_, _, err := generate(genOpts{out: t.TempDir(), seed: 1, small: true, format: "xml"})
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestGenerateCleanMeta: -clean-meta writes the exact metadata (every
// sibling pair survives), while the default public view is lossy for
// at least one of the files on some seed. Here we just assert the clean
// variant parses and is at least as large as the noisy one.
func TestGenerateCleanMeta(t *testing.T) {
	noisy := t.TempDir()
	clean := t.TempDir()
	if _, _, err := generate(genOpts{out: noisy, seed: 5, small: true, dests: 60, format: "text"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := generate(genOpts{out: clean, seed: 5, small: true, dests: 60, format: "text", cleanMeta: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"orgs.txt", "rels.txt", "ixp.txt"} {
		ni, err := os.Stat(filepath.Join(noisy, name))
		if err != nil {
			t.Fatal(err)
		}
		ci, err := os.Stat(filepath.Join(clean, name))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Size() < ni.Size() {
			t.Errorf("%s: clean metadata (%d bytes) smaller than noisy view (%d bytes)",
				name, ci.Size(), ni.Size())
		}
	}
}

// TestGenerateBinaryStreamsSameTraces: the streaming binary path must
// emit exactly the trace sequence the batch engine produces for the
// same seed and knobs.
func TestGenerateBinaryStreamsSameTraces(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := generate(genOpts{out: dir, seed: 3, small: true, dests: 120, format: "binary"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "traces.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := mapit.ReadTracesBinary(f)
	if err != nil {
		t.Fatal(err)
	}

	gen := mapit.SmallWorldConfig()
	gen.Seed = 3
	tc := mapit.DefaultTraceConfig()
	tc.Seed = 4
	tc.DestsPerMonitor = 120
	want := mapit.GenerateWorld(gen).GenTraces(tc)

	if len(got.Traces) != len(want.Traces) {
		t.Fatalf("streamed %d traces, batch engine produced %d", len(got.Traces), len(want.Traces))
	}
	for i := range want.Traces {
		a, b := want.Traces[i], got.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] {
				t.Fatalf("trace %d hop %d differs", i, j)
			}
		}
	}
}

// TestGenerateTimestamped: -timestamps writes a time-sorted MTRC v4
// corpus (binary) or timestamped JSONL, byte-identical across runs of
// the same seed, and rejects the text format, which cannot carry
// times.
func TestGenerateTimestamped(t *testing.T) {
	if _, _, err := generate(genOpts{
		out: t.TempDir(), seed: 3, small: true, dests: 60,
		format: "text", timestamps: true,
	}); err == nil {
		t.Fatal("-timestamps with text format accepted")
	}

	run := func(dir, format string) {
		t.Helper()
		if _, _, err := generate(genOpts{
			out: dir, seed: 3, small: true, dests: 60, format: format,
			timestamps: true, timeBase: 1_700_000_000, timeStep: 10, timeJitter: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}

	d1, d2 := t.TempDir(), t.TempDir()
	run(d1, "binary")
	run(d2, "binary")
	b1, err := os.ReadFile(filepath.Join(d1, "traces.bin"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(d2, "traces.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different timestamped binary corpora")
	}
	if string(b1[:5]) != "MTRC\x04" {
		t.Fatalf("timestamped binary corpus is not MTRC v4 (magic %q)", b1[:5])
	}
	ds, err := mapit.ReadTracesBinary(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) == 0 {
		t.Fatal("empty corpus")
	}
	for i, tr := range ds.Traces {
		if tr.Time < 1_700_000_000 {
			t.Fatalf("trace %d: time %d below base", i, tr.Time)
		}
		if i > 0 && tr.Time < ds.Traces[i-1].Time {
			t.Fatalf("corpus not time-sorted at %d", i)
		}
	}

	jd := t.TempDir()
	run(jd, "json")
	jf, err := os.Open(filepath.Join(jd, "traces.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	jds, err := mapit.ReadTracesJSON(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jds.Traces) != len(ds.Traces) {
		t.Fatalf("json corpus has %d traces, binary %d", len(jds.Traces), len(ds.Traces))
	}
	for i := range jds.Traces {
		if jds.Traces[i].Time != ds.Traces[i].Time {
			t.Fatalf("json and binary corpora disagree on time at %d", i)
		}
	}
}
