package main

import "testing"

func TestValidateFlags(t *testing.T) {
	for _, tc := range []struct {
		name  string
		f     float64
		seeds int
		ok    bool
	}{
		{"defaults", 0.5, 0, true},
		{"f lower edge", 0, 0, true},
		{"f upper edge", 1, 0, true},
		{"f negative", -0.1, 0, false},
		{"f above one", 1.5, 0, false},
		{"seeds positive", 0.5, 10, true},
		{"seeds negative", 0.5, -1, false},
	} {
		err := validateFlags(tc.f, tc.seeds)
		if (err == nil) != tc.ok {
			t.Errorf("%s: validateFlags(%v, %d) = %v, want ok=%v", tc.name, tc.f, tc.seeds, err, tc.ok)
		}
	}
}
