// Command mapit-eval regenerates every table and figure of the paper's
// evaluation (§5) over a synthetic Internet with ground truth:
//
//	-stats   dataset statistics (§4.1–§4.3, §5 prose)
//	-table1  Table 1: precision/recall by AS relationship, f=0.5
//	-fig6    Figure 6: precision/recall vs the evidence threshold f
//	-fig7    Figure 7: the impact of each algorithm stage
//	-fig8    Figure 8: comparison with Simple/Convention/ITDK baselines
//	-all     everything
//
// The networks are labelled I2*/L3*/TS* to mark them as the synthetic
// analogues of the paper's Internet2 / Level 3 / TeliaSonera targets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mapit/internal/eval"
)

func main() {
	var (
		doStats  = flag.Bool("stats", false, "dataset statistics")
		doTable1 = flag.Bool("table1", false, "Table 1")
		doFig6   = flag.Bool("fig6", false, "Figure 6 (f sweep)")
		doFig7   = flag.Bool("fig7", false, "Figure 7 (per-stage impact)")
		doFig8   = flag.Bool("fig8", false, "Figure 8 (baseline comparison)")
		doReprb  = flag.Bool("reprobe", false, "targeted re-probing experiment (§5.4 remedy)")
		doBdr    = flag.Bool("bdrmap", false, "bdrmap-style head-to-head (§6 future work)")
		doAll    = flag.Bool("all", false, "run everything")
		small    = flag.Bool("small", false, "use the small test world")
		large    = flag.Bool("large", false, "use the large headline world (slower)")
		seed     = flag.Int64("seed", 1, "world seed")
		seeds    = flag.Int("seeds", 0, "run Table 1 across N seeds and summarise (robustness)")
		f        = flag.Float64("f", 0.5, "evidence threshold for table1/fig7/fig8")
	)
	flag.Parse()
	if err := validateFlags(*f, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "mapit-eval:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *doAll {
		*doStats, *doTable1, *doFig6, *doFig7, *doFig8, *doReprb, *doBdr = true, true, true, true, true, true, true
	}
	anyNamed := *doStats || *doTable1 || *doFig6 || *doFig7 || *doFig8 || *doReprb || *doBdr
	if !anyNamed && *seeds == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := eval.DefaultEnvConfig()
	if *small {
		cfg = eval.SmallEnvConfig()
	}
	if *large {
		cfg = eval.LargeEnvConfig()
	}
	cfg.Gen.Seed = *seed

	if *seeds > 0 {
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		summaries, err := eval.MultiSeed(cfg, list, *f)
		fatal(err)
		fmt.Printf("## Cross-seed robustness (Table 1 totals, f=%.1f)\n", *f)
		eval.WriteMultiSeed(os.Stdout, summaries, list)
		fmt.Println()
		if !anyNamed {
			return
		}
	}

	start := time.Now()
	e := eval.NewEnv(cfg)
	fmt.Printf("# %s\n# environment built in %v\n\n", e.World.String(), time.Since(start).Round(time.Millisecond))

	if *doStats {
		r, err := e.Run(e.Config(*f))
		fatal(err)
		fmt.Println("## Dataset statistics (§4.1–§4.3, §5)")
		eval.WriteStats(os.Stdout, eval.Stats(e, r))
		fmt.Println()
	}
	if *doTable1 {
		scores, _, err := eval.Table1(e, *f)
		fatal(err)
		fmt.Printf("## Table 1 — inferences by AS relationship (f=%.1f)\n", *f)
		eval.WriteTable1(os.Stdout, scores)
		fmt.Println()
	}
	if *doFig6 {
		series, err := eval.Fig6(e)
		fatal(err)
		fmt.Println("## Figure 6 — the impact of f")
		eval.WriteFig6(os.Stdout, series)
		fmt.Println()
	}
	if *doFig7 {
		stages, err := eval.Fig7(e, *f)
		fatal(err)
		fmt.Printf("## Figure 7 — the impact of each step (f=%.1f)\n", *f)
		eval.WriteFig7(os.Stdout, stages)
		fmt.Println()
	}
	if *doFig8 {
		cmp, err := eval.Fig8(e, *f)
		fatal(err)
		fmt.Printf("## Figure 8 — existing approaches vs MAP-IT (f=%.1f)\n", *f)
		eval.WriteFig8(os.Stdout, cmp)
		fmt.Println()
	}
	if *doReprb {
		rr, err := eval.Reprobe(e, *f, 8, 400)
		fatal(err)
		fmt.Printf("## Targeted re-probing (§5.4 remedy; f=%.1f)\n", *f)
		eval.WriteReprobe(os.Stdout, rr)
		fmt.Println()
	}
	if *doBdr {
		bc, err := eval.Bdrmap(e, *f)
		fatal(err)
		fmt.Printf("## bdrmap-style head-to-head on %s (§6 future work; f=%.1f)\n", bc.Network, *f)
		eval.WriteBdrmap(os.Stdout, bc)
		fmt.Println()
	}
}

// validateFlags rejects out-of-range flag values up front, so a typo
// exits 2 with usage instead of surfacing as a mid-run failure (or
// silently producing a misconfigured evaluation).
func validateFlags(f float64, seeds int) error {
	if f < 0 || f > 1 {
		return fmt.Errorf("-f %v out of range (want [0,1])", f)
	}
	if seeds < 0 {
		return fmt.Errorf("-seeds %d out of range (want >= 0)", seeds)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapit-eval:", err)
		os.Exit(1)
	}
}
