package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const testTraces = `# Fig 2 style scenario
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
ark3|109.105.200.1|109.105.98.9 109.105.80.1
`

const testRIB = `rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
`

func writeInputs(t *testing.T) (tracesPath, ribPath string) {
	t.Helper()
	dir := t.TempDir()
	tracesPath = filepath.Join(dir, "traces.txt")
	ribPath = filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(tracesPath, []byte(testTraces), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}
	return tracesPath, ribPath
}

func TestRunUsageErrors(t *testing.T) {
	_, rib := writeInputs(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no rib", nil},
		{"unknown flag", []string{"-rib", rib, "-bogus"}},
		{"f out of range", []string{"-rib", rib, "-f", "1.5"}},
		{"bad mem budget", []string{"-rib", rib, "-mem-budget", "lots"}},
		{"bad max body", []string{"-rib", rib, "-max-body", "-5M"}},
		{"bad page size", []string{"-rib", rib, "-page-size", "0"}},
		{"fractional window", []string{"-rib", rib, "-window", "1500ms"}},
		{"sub-second window", []string{"-rib", rib, "-window", "500ms"}},
		{"window with mem budget", []string{"-rib", rib, "-window", "10m", "-mem-budget", "64M"}},
		{"window with spill dir", []string{"-rib", rib, "-window", "10m", "-spill-dir", t.TempDir()}},
	} {
		var stderr bytes.Buffer
		if code := run(tc.args, io.Discard, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
		}
	}
}

func TestRunMissingFilesExitOne(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-rib", "/nonexistent/rib.txt"}, io.Discard, &stderr); code != 1 {
		t.Errorf("missing rib: exit %d, want 1", code)
	}
	_, rib := writeInputs(t)
	stderr.Reset()
	if code := run([]string{"-rib", rib, "-traces", "/nonexistent/traces.bin"},
		io.Discard, &stderr); code != 1 {
		t.Errorf("missing traces: exit %d, want 1", code)
	}
}

func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"123", 123, true},
		{"2K", 2 << 10, true},
		{"64m", 64 << 20, true},
		{"1G", 1 << 30, true},
		{"-1", 0, false},
		{"x", 0, false},
		{"1T", 0, false},
		{"9999999999G", 0, false},
	} {
		got, err := parseByteSize(tc.in, "-max-body")
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parseByteSize(%q) = (%d, %v), want (%d, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// lineWriter forwards whole stderr lines to a channel so the test can
// wait for the daemon's "listening on" announcement.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		s := w.buf.String()
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			break
		}
		select {
		case w.lines <- s[:i]:
		default: // a stalled test must not block the daemon
		}
		w.buf.Next(i + 1)
	}
	return len(p), nil
}

// TestDaemonServesAndDrains boots the real daemon in-process on an
// ephemeral port, exercises the API over actual TCP, then delivers
// SIGTERM and checks the graceful-drain path exits 0.
func TestDaemonServesAndDrains(t *testing.T) {
	traces, rib := writeInputs(t)
	lw := &lineWriter{lines: make(chan string, 64)}
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-rib", rib, "-traces", traces,
			"-listen", "127.0.0.1:0",
			"-shutdown-timeout", "10s",
		}, io.Discard, lw)
	}()

	var addr string
	deadline := time.After(30 * time.Second)
	for addr == "" {
		select {
		case line := <-lw.lines:
			if rest, ok := strings.CutPrefix(line, "mapitd: listening on "); ok {
				addr = rest
			}
		case code := <-exit:
			t.Fatalf("daemon exited %d before listening", code)
		case <-deadline:
			t.Fatal("daemon never announced its address")
		}
	}
	base := "http://" + addr

	var hz struct {
		Ready   bool   `json:"ready"`
		Version uint64 `json:"version"`
	}
	getJSON(t, base+"/v1/healthz", &hz)
	if !hz.Ready || hz.Version != 1 {
		t.Errorf("healthz = %+v, want ready v1", hz)
	}

	var recs []struct {
		Addr       string            `json:"addr"`
		Inferences []json.RawMessage `json:"inferences"`
	}
	getJSON(t, base+"/v1/lookup?addr=109.105.98.10", &recs)
	if len(recs) != 1 || recs[0].Addr != "109.105.98.10" {
		t.Errorf("lookup over TCP = %+v", recs)
	}

	// POST a second batch and observe the version bump end to end.
	resp, err := http.Post(base+"/v1/ingest", "application/octet-stream",
		strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Version uint64 `json:"version"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ingest: status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Version != 2 {
		t.Errorf("ingest version = %d, want 2", sum.Version)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("daemon exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decode %q: %v", url, body, err)
	}
}
