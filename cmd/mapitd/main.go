// Command mapitd is the resident MAP-IT inference daemon: it loads a
// traceroute corpus through the same sniffing ingest pipeline as the
// mapit CLI, runs the inference, and serves the compiled snapshot over
// HTTP/JSON instead of printing it once.
//
// Usage:
//
//	mapitd -rib rib.txt [-traces traces.bin] [-listen :8642]
//	       [-orgs orgs.txt] [-rels rels.txt] [-ixp ixp.txt]
//	       [-f 0.5] [-workers N] [-strict]
//	       [-mem-budget 256M] [-spill-dir DIR]
//	       [-request-timeout 10s] [-ingest-timeout 5m]
//	       [-max-body 256M] [-page-size 100]
//	       [-window 10m] [-shutdown-timeout 30s]
//
// Endpoints (all JSON):
//
//	GET  /v1/lookup?addr=A[,B][&addr=C]      inference records per address
//	GET  /v1/links[?as=A[&as=B]]             aggregated AS links, paginated
//	GET  /v1/monitors/{name}/evidence        a vantage point's adjacencies
//	GET  /v1/healthz                         liveness + readiness
//	GET  /v1/stats                           run diagnostics + HTTP counters
//	POST /v1/ingest                          add a corpus batch, republish
//	POST /v1/advance?now=N                   move the window (windowed mode)
//
// Every data response carries the snapshot version as a strong ETag;
// requests with a matching If-None-Match answer 304. POST /v1/ingest
// accepts an MTRC v2/v3 binary, JSONL, or text body, folds it into the
// cumulative evidence, reruns inference and atomically publishes the
// new snapshot — in-flight readers keep the old one. -traces is
// optional: without it the daemon starts empty (data endpoints answer
// 503) and waits for the first ingest.
//
// With -window DUR the daemon runs in sliding-window mode: evidence is
// keyed on trace timestamps (JSONL time fields or the MTRC v4
// timestamp column) and only traces within the trailing DUR survive.
// Each ingest advances the window to the batch's newest timestamp;
// POST /v1/advance?now=N moves it explicitly (expiring old evidence
// and republishing) without new data. Every advance that changes the
// evidence bumps the snapshot version, so cached ETags and pinned
// /v1/links cursors from before the advance answer 304-misses and 410
// respectively. /v1/stats gains a "window" section with churn
// counters. -window does not combine with -mem-budget or -spill-dir.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -shutdown-timeout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"mapit"
	"mapit/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon: flag parsing, corpus load, serving, and
// graceful shutdown. It returns the process exit code (0 ok, 1 runtime
// failure, 2 usage); main is a one-line wrapper so deferred cleanups
// fire on every exit path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapitd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", ":8642", "TCP address to serve HTTP on")
		tracesPath = fs.String("traces", "", "initial traceroute corpus (optional; \"-\" reads stdin)")
		ribPath    = fs.String("rib", "", "BGP RIB dump (required)")
		orgsPath   = fs.String("orgs", "", "AS-to-organisation (sibling) dataset")
		relsPath   = fs.String("rels", "", "AS relationship dataset (enables the stub heuristic)")
		ixpPath    = fs.String("ixp", "", "IXP prefix/ASN directory")
		f          = fs.Float64("f", 0.5, "evidence threshold f in [0,1] (§4.4.1)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel ingest and scan workers")
		strict     = fs.Bool("strict", false, "abort ingest on any binary-input corruption instead of skipping corrupt blocks")
		memBudget  = fs.String("mem-budget", "", "ingest evidence memory budget (e.g. 64M, 1G); empty keeps everything in memory")
		spillDir   = fs.String("spill-dir", "", "directory for spill segment files (default: system temp dir)")
		reqTimeout = fs.Duration("request-timeout", 10*time.Second, "per-request timeout for query endpoints")
		ingTimeout = fs.Duration("ingest-timeout", 5*time.Minute, "end-to-end timeout for POST /v1/ingest")
		maxBody    = fs.String("max-body", "256M", "largest accepted POST /v1/ingest body (suffixes K, M, G)")
		pageSize   = fs.Int("page-size", 100, "default page length for paginated endpoints")
		window     = fs.Duration("window", 0, "sliding-window mode: retain only traces within this trailing span; ingests advance the window to the batch's newest timestamp, POST /v1/advance moves it manually")
		drain      = fs.Duration("shutdown-timeout", 30*time.Second, "how long to drain in-flight requests on SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "mapitd:", err)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mapitd:", err)
		return 1
	}

	if *ribPath == "" {
		fs.Usage()
		return 2
	}
	if *f < 0 || *f > 1 {
		return usage(fmt.Errorf("-f must be in [0,1], got %v", *f))
	}
	if *pageSize < 1 {
		return usage(fmt.Errorf("-page-size must be positive, got %d", *pageSize))
	}
	if *window != 0 && (*window < time.Second || *window%time.Second != 0) {
		return usage(fmt.Errorf("-window must be a whole number of seconds, at least 1s (got %v)", *window))
	}
	if *window > 0 && (*memBudget != "" || *spillDir != "") {
		return usage(errors.New("-window does not combine with -mem-budget or -spill-dir (the window keeps its evidence in memory)"))
	}
	budget, err := parseByteSize(*memBudget, "-mem-budget")
	if err != nil {
		return usage(err)
	}
	bodyCap, err := parseByteSize(*maxBody, "-max-body")
	if err != nil {
		return usage(err)
	}

	table, err := mapit.ReadRIBFile(*ribPath)
	if err != nil {
		return fail(err)
	}
	table.Freeze()
	cfg := mapit.Config{IP2AS: table, F: *f, Workers: *workers}
	if *orgsPath != "" {
		if cfg.Orgs, err = mapit.ReadOrgsFile(*orgsPath); err != nil {
			return fail(err)
		}
	}
	if *relsPath != "" {
		if cfg.Rels, err = mapit.ReadRelationshipsFile(*relsPath); err != nil {
			return fail(err)
		}
	}
	if *ixpPath != "" {
		if cfg.IXP, err = mapit.ReadIXPFile(*ixpPath); err != nil {
			return fail(err)
		}
	}

	srv, err := serve.NewServer(serve.Options{
		Config:         cfg,
		Workers:        *workers,
		Strict:         *strict,
		Spill:          mapit.SpillConfig{Dir: *spillDir, MemBudget: budget},
		RequestTimeout: *reqTimeout,
		IngestTimeout:  *ingTimeout,
		MaxBodyBytes:   bodyCap,
		PageSize:       *pageSize,
		Window:         *window,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()

	if *tracesPath != "" {
		sum, err := loadCorpus(srv, *tracesPath)
		if err != nil {
			return fail(fmt.Errorf("load %s: %w", *tracesPath, err))
		}
		fmt.Fprintf(stderr, "mapitd: loaded %d traces, %d inferences, %d links, snapshot v%d\n",
			sum.TracesTotal, sum.Inferences, sum.Links, sum.Version)
	}

	// Register the drain signals before announcing the address: once
	// "listening on" is printed, a supervisor may SIGTERM at any moment
	// and must hit the graceful path, not the default handler.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stderr, "mapitd: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(stderr, "mapitd: %v: draining for up to %s\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fail(fmt.Errorf("shutdown: %w", err))
		}
		return 0
	}
}

// loadCorpus feeds the startup corpus through the server's ingest path
// — byte-for-byte the same pipeline POST /v1/ingest uses.
func loadCorpus(srv *serve.Server, path string) (serve.IngestSummary, error) {
	if path == "-" {
		return srv.Ingest(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return serve.IngestSummary{}, err
	}
	defer f.Close()
	return srv.Ingest(f)
}

// parseByteSize parses a byte count with an optional K/M/G suffix
// (1024-based). Empty means 0 (no budget / package default).
func parseByteSize(s, flagName string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	num, mult := s, int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		num, mult = s[:len(s)-1], 1<<10
	case 'm', 'M':
		num, mult = s[:len(s)-1], 1<<20
	case 'g', 'G':
		num, mult = s[:len(s)-1], 1<<30
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("invalid %s %q (want e.g. 64M, 1G)", flagName, s)
	}
	return n * mult, nil
}
