// Command mapit runs the MAP-IT algorithm over a traceroute dataset and
// prints the inferred inter-AS link interfaces.
//
// Usage:
//
//	mapit -traces traces.txt -rib rib.txt [-orgs orgs.txt]
//	      [-rels rels.txt] [-ixp ixp.txt] [-f 0.5] [-workers N]
//	      [-format tsv|json] [-uncertain] [-links] [-stats] [-strict]
//	      [-lookup addr[,addr...]]
//	      [-audit off|sampled|exhaustive]
//	      [-mem-budget 256M] [-spill-dir DIR]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// "-traces -" reads the dataset from stdin (any format; pipes work —
// the sniffer never seeks). Binary inputs decode permissively by
// default: corrupt v3 blocks are skipped and counted (see -stats);
// -strict turns any corruption into a hard error with offset context.
//
// -mem-budget caps the ingest collector's evidence memory (suffixes K,
// M, G; e.g. 256M): evidence over the budget spills to sorted columnar
// segment files under -spill-dir (default: the system temp directory)
// and finalisation merges them back with bounded memory. The inference
// output is byte-identical to an unbudgeted run; -stats reports the
// spill activity. Only binary inputs stream, so only they spill.
//
// -lookup resolves specific addresses instead of dumping the full
// result: the run's inferences are compiled into a query snapshot
// (internal/snapshot) and each requested address prints as one JSON
// object with every matching inference record (an empty list for
// addresses the run made no inference about). -lookup output is always
// JSON and includes uncertain records; -format, -links and -uncertain
// do not apply.
//
// -audit runs the runtime invariant auditor alongside the inference:
// at every fixpoint step boundary the incremental machinery is
// cross-checked against first-principles recomputation ("sampled"
// checks a rotating stride of each structure, "exhaustive" checks
// everything). Violations print to stderr and exit non-zero.
//
// Input formats are documented in the repository README; cmd/gentopo
// produces a complete compatible dataset from a synthetic Internet.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"mapit"
)

func main() {
	var (
		tracesPath = flag.String("traces", "", "traceroute dataset (required; \"-\" reads stdin)")
		ribPath    = flag.String("rib", "", "BGP RIB dump (required)")
		orgsPath   = flag.String("orgs", "", "AS-to-organisation (sibling) dataset")
		relsPath   = flag.String("rels", "", "AS relationship dataset (enables the stub heuristic)")
		ixpPath    = flag.String("ixp", "", "IXP prefix/ASN directory")
		f          = flag.Float64("f", 0.5, "evidence threshold f in [0,1] (§4.4.1)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel ingest and scan workers (results are identical for any value)")
		format     = flag.String("format", "tsv", "output format: tsv or json")
		uncertain  = flag.Bool("uncertain", false, "also print uncertain inferences")
		links      = flag.Bool("links", false, "print aggregated AS links instead of interfaces")
		stats      = flag.Bool("stats", false, "print run diagnostics (incl. decode health) to stderr")
		lookup     = flag.String("lookup", "", "comma-separated addresses: print only their inferences, as JSON")
		strict     = flag.Bool("strict", false, "abort on any binary-input corruption instead of skipping corrupt blocks")
		memBudget  = flag.String("mem-budget", "", "ingest evidence memory budget (e.g. 64M, 1G); empty keeps everything in memory")
		spillDir   = flag.String("spill-dir", "", "directory for spill segment files (default: system temp dir)")
		auditFlag  = flag.String("audit", "off", "runtime invariant auditor: off, sampled, or exhaustive")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering ingest + inference to this file")
		memprofile = flag.String("memprofile", "", "write a post-run heap profile to this file")
	)
	flag.Parse()
	if *tracesPath == "" || *ribPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateFormat(*format); err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		flag.Usage()
		os.Exit(2)
	}
	auditMode, err := mapit.ParseAuditMode(*auditFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		flag.Usage()
		os.Exit(2)
	}
	// Bad addresses must fail before the (potentially long) run starts.
	lookupAddrs, err := parseLookup(*lookup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		flag.Usage()
		os.Exit(2)
	}
	budget, err := parseMemBudget(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		flag.Usage()
		os.Exit(2)
	}
	spill := mapit.SpillConfig{Dir: *spillDir, MemBudget: budget}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		fatal(err)
		// Registered before StopCPUProfile so the deferred stop runs
		// first and the profile is fully flushed before the close.
		defer pf.Close()
		fatal(pprof.StartCPUProfile(pf))
		defer pprof.StopCPUProfile()
	}

	table, err := mapit.ReadRIBFile(*ribPath)
	fatal(err)
	// Compile the table into its flat multibit form before the ingest
	// workers start hammering it (RunEvidence would freeze it anyway;
	// doing it here keeps the compile out of the profiled hot loop).
	table.Freeze()

	cfg := mapit.Config{IP2AS: table, F: *f, Workers: *workers}
	if auditMode != mapit.AuditOff {
		cfg.Audit = &mapit.AuditChecker{Mode: auditMode}
	}
	if *orgsPath != "" {
		cfg.Orgs, err = mapit.ReadOrgsFile(*orgsPath)
		fatal(err)
	}
	if *relsPath != "" {
		cfg.Rels, err = mapit.ReadRelationshipsFile(*relsPath)
		fatal(err)
	}
	if *ixpPath != "" {
		cfg.IXP, err = mapit.ReadIXPFile(*ixpPath)
		fatal(err)
	}

	res, err := runTraces(*tracesPath, cfg, *strict, spill)
	fatal(err)

	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		fatal(err)
		runtime.GC() // settle the heap so the profile shows live retained state
		fatal(pprof.WriteHeapProfile(pf))
		fatal(pf.Close())
	}

	if *stats {
		d := res.Diag
		fmt.Fprintf(os.Stderr,
			"interfaces=%d eligible_fwd=%d eligible_back=%d iterations=%d "+
				"add_passes=%d dual=%d inverse=%d divergent=%d stub=%d slash31=%.3f\n",
			d.Interfaces, d.EligibleForward, d.EligibleBackward, d.Iterations,
			d.AddPasses, d.DualResolved, d.InverseDiscarded, d.DivergentOtherSides,
			d.StubInferences, d.Slash31Fraction)
		fmt.Fprintf(os.Stderr, "decode: %s\n", d.Decode.String())
		fmt.Fprintf(os.Stderr, "spill: %s\n", d.Spill.String())
		fmt.Fprintf(os.Stderr, "partition: %s\n", res.Partition.String())
	}
	if rep := res.Audit; rep != nil {
		if *stats || !rep.Ok() {
			fmt.Fprintln(os.Stderr, rep)
		}
		if !rep.Ok() {
			for _, v := range rep.Violations {
				fmt.Fprintln(os.Stderr, "mapit: audit:", v.String())
			}
			if rep.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "mapit: audit: ... and %d more violations\n", rep.Dropped)
			}
			os.Exit(1)
		}
	}

	if len(lookupAddrs) > 0 {
		printLookup(os.Stdout, res, lookupAddrs)
		return
	}
	if *links {
		printLinks(res, *format)
		return
	}
	printInferences(res, *format, *uncertain)
}

// parseLookup splits and parses the -lookup address list; empty input
// means the flag is unset.
func parseLookup(s string) ([]mapit.Addr, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	addrs := make([]mapit.Addr, 0, len(parts))
	for _, p := range parts {
		a, err := mapit.ParseAddr(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid -lookup address %q", p)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// validateFormat rejects unknown -format values so a typo exits 2 with
// usage instead of silently falling through to TSV output.
func validateFormat(format string) error {
	switch format {
	case "tsv", "json":
		return nil
	}
	return fmt.Errorf("unknown -format %q (want tsv or json)", format)
}

// parseMemBudget parses a byte size with an optional K/M/G suffix
// (1024-based), e.g. "64M" or "1G". Empty means 0: no budget.
func parseMemBudget(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	num, mult := s, int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		num, mult = s[:len(s)-1], 1<<10
	case 'm', 'M':
		num, mult = s[:len(s)-1], 1<<20
	case 'g', 'G':
		num, mult = s[:len(s)-1], 1<<30
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("invalid -mem-budget %q (want e.g. 64M, 1G)", s)
	}
	return n * mult, nil
}

// runTraces executes MAP-IT over the dataset at path; "-" reads stdin.
func runTraces(path string, cfg mapit.Config, strict bool, spill mapit.SpillConfig) (*mapit.Result, error) {
	if path == "-" {
		return runTraceReader(os.Stdin, cfg, strict, spill)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return runTraceReader(f, cfg, strict, spill)
}

// runTraceReader executes MAP-IT over a trace dataset read from in,
// sniffing the format from the first bytes via Peek — no seeking, so
// pipes and stdin work. Binary-format inputs are streamed through a
// sharded collector (sanitisation and adjacency deduplication run on
// cfg.Workers goroutines) so corpora larger than memory work at full
// core count; text and JSONL inputs are loaded whole and sanitised in
// parallel. Unless strict, binary inputs decode permissively: corrupt
// v3 blocks are skipped and tallied into the result's decode-health
// diagnostics. A spill budget (see -mem-budget) bounds the collector's
// evidence memory on the binary path.
func runTraceReader(in io.Reader, cfg mapit.Config, strict bool, spill mapit.SpillConfig) (*mapit.Result, error) {
	br := bufio.NewReaderSize(in, 1<<16)
	// Peek returns whatever is available on short inputs along with an
	// error we deliberately ignore: a 3-byte file is still valid text.
	head, _ := br.Peek(5)
	switch {
	case len(head) == 5 && (string(head) == "MTRC\x02" || string(head) == "MTRC\x03"):
		stats := &mapit.DecodeStats{}
		stream, err := mapit.NewTraceStreamOpts(br, mapit.DecodeOptions{
			Permissive: !strict,
			Stats:      stats,
		})
		if err != nil {
			return nil, err
		}
		c := mapit.NewParallelCollectorSpill(cfg.Workers, spill)
		defer c.Close()
		for {
			t, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			c.Add(t)
		}
		ev, err := c.Finish()
		if err != nil {
			return nil, err
		}
		cfg.DecodeStats = stats
		spilled := c.SpillStats()
		cfg.SpillStats = &spilled
		return mapit.InferEvidence(ev, cfg)
	case len(head) > 0 && head[0] == '{':
		ds, err := mapit.ReadTracesJSON(br)
		if err != nil {
			return nil, err
		}
		return mapit.Infer(ds, cfg)
	default:
		ds, err := mapit.ReadTraces(br)
		if err != nil {
			return nil, err
		}
		return mapit.Infer(ds, cfg)
	}
}

func printInferences(res *mapit.Result, format string, uncertain bool) {
	var out []mapit.Inference
	for _, inf := range res.Inferences {
		if inf.Uncertain && !uncertain {
			continue
		}
		out = append(out, inf)
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		recs := make([]inferenceRec, 0, len(out))
		for _, inf := range out {
			recs = append(recs, newInferenceRec(inf))
		}
		fatal(enc.Encode(recs))
	default:
		fmt.Println("# addr\tdirection\tlocal_as\tconnected_as\tother_side\tflags")
		for _, inf := range out {
			flags := ""
			if inf.Uncertain {
				flags += "uncertain,"
			}
			if inf.Stub {
				flags += "stub,"
			}
			if inf.Indirect {
				flags += "indirect,"
			}
			if flags == "" {
				flags = "-"
			} else {
				flags = flags[:len(flags)-1]
			}
			fmt.Printf("%s\t%s\t%d\t%d\t%s\t%s\n",
				inf.Addr, inf.Dir, uint32(inf.Local), uint32(inf.Connected),
				inf.OtherSide, flags)
		}
	}
}

// inferenceRec is the JSON shape of one inference record, shared by
// -format json and -lookup output.
type inferenceRec struct {
	Addr      string `json:"addr"`
	Direction string `json:"direction"`
	Local     uint32 `json:"local_as"`
	Connected uint32 `json:"connected_as"`
	OtherSide string `json:"other_side,omitempty"`
	Uncertain bool   `json:"uncertain,omitempty"`
	Stub      bool   `json:"stub_heuristic,omitempty"`
	Indirect  bool   `json:"indirect,omitempty"`
}

func newInferenceRec(inf mapit.Inference) inferenceRec {
	r := inferenceRec{
		Addr:      inf.Addr.String(),
		Direction: inf.Dir.String(),
		Local:     uint32(inf.Local),
		Connected: uint32(inf.Connected),
		Uncertain: inf.Uncertain,
		Stub:      inf.Stub,
		Indirect:  inf.Indirect,
	}
	if !inf.OtherSide.IsZero() {
		r.OtherSide = inf.OtherSide.String()
	}
	return r
}

// printLookup compiles the result into a query snapshot and prints one
// JSON object per requested address, in request order, each with every
// matching inference record (empty for uninferred addresses).
func printLookup(w io.Writer, res *mapit.Result, addrs []mapit.Addr) {
	snap := mapit.BuildSnapshot(res, nil)
	type rec struct {
		Addr       string         `json:"addr"`
		Inferences []inferenceRec `json:"inferences"`
	}
	recs := make([]rec, 0, len(addrs))
	for _, a := range addrs {
		r := rec{Addr: a.String(), Inferences: []inferenceRec{}}
		rows := snap.Lookup(a)
		for i := 0; i < rows.Len(); i++ {
			r.Inferences = append(r.Inferences, newInferenceRec(rows.At(i)))
		}
		recs = append(recs, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fatal(enc.Encode(recs))
}

func printLinks(res *mapit.Result, format string) {
	links := res.Links()
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type rec struct {
			A     uint32   `json:"as_a"`
			B     uint32   `json:"as_b"`
			Addrs []string `json:"interfaces"`
		}
		recs := make([]rec, 0, len(links))
		for _, l := range links {
			r := rec{A: uint32(l.A), B: uint32(l.B)}
			for _, a := range l.Addrs {
				r.Addrs = append(r.Addrs, a.String())
			}
			recs = append(recs, r)
		}
		fatal(enc.Encode(recs))
	default:
		fmt.Println("# as_a\tas_b\tinterfaces")
		for _, l := range links {
			fmt.Printf("%d\t%d\t", uint32(l.A), uint32(l.B))
			for i, a := range l.Addrs {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Print(a)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		os.Exit(1)
	}
}
