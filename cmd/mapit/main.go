// Command mapit runs the MAP-IT algorithm over a traceroute dataset and
// prints the inferred inter-AS link interfaces.
//
// Usage:
//
//	mapit -traces traces.txt -rib rib.txt [-orgs orgs.txt]
//	      [-rels rels.txt] [-ixp ixp.txt] [-f 0.5] [-workers N]
//	      [-format tsv|json] [-uncertain] [-links] [-stats] [-strict]
//	      [-lookup addr[,addr...]]
//	      [-audit off|sampled|exhaustive]
//	      [-window 10m -step 1m]
//	      [-mem-budget 256M] [-spill-dir DIR]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// "-traces -" reads the dataset from stdin (any format; pipes work —
// the sniffer never seeks). Binary inputs decode permissively by
// default: corrupt v3 blocks are skipped and counted (see -stats);
// -strict turns any corruption into a hard error with offset context.
//
// -mem-budget caps the ingest collector's evidence memory (suffixes K,
// M, G; e.g. 256M): evidence over the budget spills to sorted columnar
// segment files under -spill-dir (default: the system temp directory)
// and finalisation merges them back with bounded memory. The inference
// output is byte-identical to an unbudgeted run; -stats reports the
// spill activity. Only binary inputs stream record-at-a-time; text and
// JSONL corpora are parsed whole before the collector sees them.
//
// -lookup resolves specific addresses instead of dumping the full
// result: the run's inferences are compiled into a query snapshot
// (internal/snapshot) and each requested address prints as one JSON
// object with every matching inference record (an empty list for
// addresses the run made no inference about). -lookup output is always
// JSON and includes uncertain records; combining it with -format,
// -links or -uncertain is rejected (exit 2) rather than silently
// ignored.
//
// -window and -step replay a timestamped corpus (MTRC v4 or JSONL with
// "time" fields, sorted by time — cmd/gentopo -timestamps emits both)
// through the sliding-window engine: the window advances every -step,
// each advance re-running the inference over only the traces inside the
// trailing -window span. -stats prints one churn line per advance
// (link births/deaths, interface flaps); the final window position's
// inferences print through the normal output paths.
//
// -audit runs the runtime invariant auditor alongside the inference:
// at every fixpoint step boundary the incremental machinery is
// cross-checked against first-principles recomputation ("sampled"
// checks a rotating stride of each structure, "exhaustive" checks
// everything). Violations print to stderr and exit non-zero.
//
// Input formats are documented in the repository README; cmd/gentopo
// produces a complete compatible dataset from a synthetic Internet.
// The mapitd daemon serves the same inferences over HTTP instead of
// printing them once.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mapit"
	"mapit/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command: it parses flags, executes the pipeline, and
// returns the process exit code (0 ok, 1 runtime or audit failure, 2
// usage). main is a one-line wrapper so every deferred cleanup — the
// CPU profile stop and profile file close above all — fires on every
// exit path; calling os.Exit from a helper would skip them and leave a
// failed -cpuprofile run with a truncated, unparseable profile.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracesPath = fs.String("traces", "", "traceroute dataset (required; \"-\" reads stdin)")
		ribPath    = fs.String("rib", "", "BGP RIB dump (required)")
		orgsPath   = fs.String("orgs", "", "AS-to-organisation (sibling) dataset")
		relsPath   = fs.String("rels", "", "AS relationship dataset (enables the stub heuristic)")
		ixpPath    = fs.String("ixp", "", "IXP prefix/ASN directory")
		f          = fs.Float64("f", 0.5, "evidence threshold f in [0,1] (§4.4.1)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel ingest and scan workers (results are identical for any value)")
		format     = fs.String("format", "tsv", "output format: tsv or json")
		uncertain  = fs.Bool("uncertain", false, "also print uncertain inferences")
		links      = fs.Bool("links", false, "print aggregated AS links instead of interfaces")
		stats      = fs.Bool("stats", false, "print run diagnostics (incl. decode health) to stderr")
		lookup     = fs.String("lookup", "", "comma-separated addresses: print only their inferences, as JSON")
		strict     = fs.Bool("strict", false, "abort on any binary-input corruption instead of skipping corrupt blocks")
		memBudget  = fs.String("mem-budget", "", "ingest evidence memory budget (e.g. 64M, 1G); empty keeps everything in memory")
		spillDir   = fs.String("spill-dir", "", "directory for spill segment files (default: system temp dir)")
		auditFlag  = fs.String("audit", "off", "runtime invariant auditor: off, sampled, or exhaustive")
		window     = fs.Duration("window", 0, "sliding-window replay: retain only traces within this trailing span (requires -step and a timestamped corpus)")
		step       = fs.Duration("step", 0, "sliding-window replay: advance the window in steps of this duration")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile covering ingest + inference to this file")
		memprofile = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "mapit:", err)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mapit:", err)
		return 1
	}

	if *tracesPath == "" || *ribPath == "" {
		fs.Usage()
		return 2
	}
	if err := validateFormat(*format); err != nil {
		return usage(err)
	}
	if err := validateFlags(setFlags(fs)); err != nil {
		return usage(err)
	}
	if err := validateWindowFlags(setFlags(fs), *window, *step); err != nil {
		return usage(err)
	}
	auditMode, err := mapit.ParseAuditMode(*auditFlag)
	if err != nil {
		return usage(err)
	}
	// Bad addresses must fail before the (potentially long) run starts.
	lookupAddrs, err := parseLookup(*lookup)
	if err != nil {
		return usage(err)
	}
	budget, err := parseMemBudget(*memBudget)
	if err != nil {
		return usage(err)
	}
	spill := mapit.SpillConfig{Dir: *spillDir, MemBudget: budget}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		// Registered before StopCPUProfile so the deferred stop runs
		// first and the profile is fully flushed before the close.
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	table, err := mapit.ReadRIBFile(*ribPath)
	if err != nil {
		return fail(err)
	}
	// Compile the table into its flat multibit form before the ingest
	// workers start hammering it (RunEvidence would freeze it anyway;
	// doing it here keeps the compile out of the profiled hot loop).
	table.Freeze()

	cfg := mapit.Config{IP2AS: table, F: *f, Workers: *workers}
	if auditMode != mapit.AuditOff {
		cfg.Audit = &mapit.AuditChecker{Mode: auditMode}
	}
	if *orgsPath != "" {
		if cfg.Orgs, err = mapit.ReadOrgsFile(*orgsPath); err != nil {
			return fail(err)
		}
	}
	if *relsPath != "" {
		if cfg.Rels, err = mapit.ReadRelationshipsFile(*relsPath); err != nil {
			return fail(err)
		}
	}
	if *ixpPath != "" {
		if cfg.IXP, err = mapit.ReadIXPFile(*ixpPath); err != nil {
			return fail(err)
		}
	}

	var res *mapit.Result
	if *window > 0 {
		res, err = runWindowTraces(*tracesPath, cfg, *strict, *window, *step, *stats, stderr)
	} else {
		res, err = runTraces(*tracesPath, cfg, *strict, spill)
	}
	if err != nil {
		return fail(err)
	}

	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		runtime.GC() // settle the heap so the profile shows live retained state
		if err := pprof.WriteHeapProfile(pf); err != nil {
			return fail(err)
		}
		if err := pf.Close(); err != nil {
			return fail(err)
		}
	}

	if *stats {
		d := res.Diag
		fmt.Fprintf(stderr,
			"interfaces=%d eligible_fwd=%d eligible_back=%d iterations=%d "+
				"add_passes=%d dual=%d inverse=%d divergent=%d stub=%d slash31=%.3f\n",
			d.Interfaces, d.EligibleForward, d.EligibleBackward, d.Iterations,
			d.AddPasses, d.DualResolved, d.InverseDiscarded, d.DivergentOtherSides,
			d.StubInferences, d.Slash31Fraction)
		fmt.Fprintf(stderr, "decode: %s\n", d.Decode.String())
		fmt.Fprintf(stderr, "spill: %s\n", d.Spill.String())
		fmt.Fprintf(stderr, "partition: %s\n", res.Partition.String())
		if d.Window.Advances > 0 {
			fmt.Fprintf(stderr, "window: %s\n", d.Window.String())
		}
	}
	if rep := res.Audit; rep != nil {
		if *stats || !rep.Ok() {
			fmt.Fprintln(stderr, rep)
		}
		if !rep.Ok() {
			for _, v := range rep.Violations {
				fmt.Fprintln(stderr, "mapit: audit:", v.String())
			}
			if rep.Dropped > 0 {
				fmt.Fprintf(stderr, "mapit: audit: ... and %d more violations\n", rep.Dropped)
			}
			return 1
		}
	}

	var printErr error
	switch {
	case len(lookupAddrs) > 0:
		printErr = printLookup(stdout, res, lookupAddrs)
	case *links:
		printErr = printLinks(stdout, res, *format)
	default:
		printErr = printInferences(stdout, res, *format, *uncertain)
	}
	if printErr != nil {
		return fail(printErr)
	}
	return 0
}

// setFlags reports which flags were explicitly set on the command line,
// distinguishing "-format tsv" (set) from the tsv default (unset).
func setFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateFlags rejects flag combinations the command would otherwise
// silently ignore: -lookup output is always JSON and already includes
// uncertain records, so combining it with -format, -links or -uncertain
// is a contradiction, not a preference — exit 2, like validateFormat.
func validateFlags(set map[string]bool) error {
	if !set["lookup"] {
		return nil
	}
	var conflicts []string
	for _, name := range []string{"format", "links", "uncertain"} {
		if set[name] {
			conflicts = append(conflicts, "-"+name)
		}
	}
	if len(conflicts) == 0 {
		return nil
	}
	return fmt.Errorf("-lookup does not combine with %s (lookup output is always JSON and includes uncertain records)",
		strings.Join(conflicts, ", "))
}

// validateWindowFlags rejects inconsistent sliding-window flag
// combinations: -window and -step come as a pair of whole-second
// durations, and replay keeps the window's evidence in memory, so the
// out-of-core knobs and the one-shot -lookup mode don't combine.
func validateWindowFlags(set map[string]bool, window, step time.Duration) error {
	if !set["window"] && !set["step"] {
		return nil
	}
	if !set["window"] || !set["step"] {
		return fmt.Errorf("-window and -step must be given together")
	}
	if window < time.Second || window%time.Second != 0 {
		return fmt.Errorf("-window must be a whole number of seconds, at least 1s (got %v)", window)
	}
	if step < time.Second || step%time.Second != 0 {
		return fmt.Errorf("-step must be a whole number of seconds, at least 1s (got %v)", step)
	}
	for _, name := range []string{"lookup", "mem-budget", "spill-dir"} {
		if set[name] {
			return fmt.Errorf("-window does not combine with -%s (windowed replay keeps its evidence in memory and prints the final window)", name)
		}
	}
	return nil
}

// parseLookup splits and parses the -lookup address list; empty input
// means the flag is unset.
func parseLookup(s string) ([]mapit.Addr, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	addrs := make([]mapit.Addr, 0, len(parts))
	for _, p := range parts {
		a, err := mapit.ParseAddr(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid -lookup address %q", p)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// validateFormat rejects unknown -format values so a typo exits 2 with
// usage instead of silently falling through to TSV output.
func validateFormat(format string) error {
	switch format {
	case "tsv", "json":
		return nil
	}
	return fmt.Errorf("unknown -format %q (want tsv or json)", format)
}

// parseMemBudget parses a byte size with an optional K/M/G suffix
// (1024-based), e.g. "64M" or "1G". Empty means 0: no budget.
func parseMemBudget(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	num, mult := s, int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		num, mult = s[:len(s)-1], 1<<10
	case 'm', 'M':
		num, mult = s[:len(s)-1], 1<<20
	case 'g', 'G':
		num, mult = s[:len(s)-1], 1<<30
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("invalid -mem-budget %q (want e.g. 64M, 1G)", s)
	}
	return n * mult, nil
}

// runTraces executes MAP-IT over the dataset at path; "-" reads stdin.
func runTraces(path string, cfg mapit.Config, strict bool, spill mapit.SpillConfig) (*mapit.Result, error) {
	if path == "-" {
		return runTraceReader(os.Stdin, cfg, strict, spill)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return runTraceReader(f, cfg, strict, spill)
}

// runTraceReader executes MAP-IT over a trace dataset read from in
// through the shared sniffing ingest pipeline (mapit.Ingestor, also the
// mapitd daemon's ingest path): the format is sniffed from the first
// bytes via Peek — no seeking, so pipes and stdin work — and every
// trace streams through a sharded collector (sanitisation and adjacency
// deduplication run on cfg.Workers goroutines). Unless strict, binary
// inputs decode permissively: corrupt v3 blocks are skipped and tallied
// into the result's decode-health diagnostics. A spill budget (see
// -mem-budget) bounds the collector's evidence memory.
func runTraceReader(in io.Reader, cfg mapit.Config, strict bool, spill mapit.SpillConfig) (*mapit.Result, error) {
	ing := mapit.NewIngestor(mapit.IngestOptions{
		Workers: cfg.Workers,
		Strict:  strict,
		Spill:   spill,
	})
	defer ing.Close()
	if _, err := ing.Ingest(in); err != nil {
		return nil, err
	}
	ev, err := ing.Finish()
	if err != nil {
		return nil, err
	}
	cfg.DecodeStats = ing.DecodeStats()
	spilled := ing.SpillStats()
	cfg.SpillStats = &spilled
	return mapit.InferEvidence(ev, cfg)
}

// runWindowTraces replays a timestamped corpus through a sliding
// window (mapit.WindowReplay): the window advances every step, each
// advance re-running the inference over only the traces still inside
// the trailing span. When stats is set, each advance prints one churn
// line to stderr; the returned result is the final window position's,
// printed through the same output paths as a batch run.
func runWindowTraces(path string, cfg mapit.Config, strict bool,
	window, step time.Duration, stats bool, stderr io.Writer) (*mapit.Result, error) {

	in := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	var dstats mapit.DecodeStats
	cfg.DecodeStats = &dstats
	win, err := mapit.NewWindow(mapit.WindowOptions{Length: window, Config: cfg})
	if err != nil {
		return nil, err
	}
	var res *mapit.Result
	err = mapit.WindowReplay(in, win, mapit.DecodeOptions{Permissive: !strict, Stats: &dstats},
		int64(step/time.Second), func(now int64, r *mapit.Result) error {
			res = r
			if stats {
				fmt.Fprintf(stderr, "window advance now=%d %s\n", now, r.Diag.Window.String())
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("window replay: corpus carried no traces")
	}
	return res, nil
}

func printInferences(w io.Writer, res *mapit.Result, format string, uncertain bool) error {
	var out []mapit.Inference
	for _, inf := range res.Inferences {
		if inf.Uncertain && !uncertain {
			continue
		}
		out = append(out, inf)
	}
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		recs := make([]serve.InferenceRecord, 0, len(out))
		for _, inf := range out {
			recs = append(recs, serve.NewInferenceRecord(inf))
		}
		return enc.Encode(recs)
	default:
		fmt.Fprintln(w, "# addr\tdirection\tlocal_as\tconnected_as\tother_side\tflags")
		for _, inf := range out {
			flags := ""
			if inf.Uncertain {
				flags += "uncertain,"
			}
			if inf.Stub {
				flags += "stub,"
			}
			if inf.Indirect {
				flags += "indirect,"
			}
			if flags == "" {
				flags = "-"
			} else {
				flags = flags[:len(flags)-1]
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%s\n",
				inf.Addr, inf.Dir, uint32(inf.Local), uint32(inf.Connected),
				inf.OtherSide, flags)
		}
		return nil
	}
}

// printLookup compiles the result into a query snapshot and prints one
// JSON object per requested address, in request order, each with every
// matching inference record (empty for uninferred addresses). The
// records are the serve package's wire shapes: byte-identical to what
// mapitd's /v1/lookup returns for the same addresses.
func printLookup(w io.Writer, res *mapit.Result, addrs []mapit.Addr) error {
	snap := mapit.BuildSnapshot(res, nil)
	recs := make([]serve.LookupRecord, 0, len(addrs))
	for _, a := range addrs {
		recs = append(recs, serve.NewLookupRecord(snap, a))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

func printLinks(w io.Writer, res *mapit.Result, format string) error {
	links := res.Links()
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		recs := make([]serve.LinkRecord, 0, len(links))
		for _, l := range links {
			recs = append(recs, serve.NewLinkRecord(l))
		}
		return enc.Encode(recs)
	default:
		fmt.Fprintln(w, "# as_a\tas_b\tinterfaces")
		for _, l := range links {
			fmt.Fprintf(w, "%d\t%d\t", uint32(l.A), uint32(l.B))
			for i, a := range l.Addrs {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprint(w, a)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}
