package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mapit"
)

const testTraces = `# Fig 2 style scenario
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
ark3|109.105.200.1|109.105.98.9 109.105.80.1
`

const testRIB = `rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
`

func testConfig(t *testing.T) mapit.Config {
	t.Helper()
	table, err := mapit.ReadRIB(strings.NewReader(testRIB))
	if err != nil {
		t.Fatal(err)
	}
	return mapit.Config{IP2AS: table, F: 0.5, Workers: 2}
}

func testBinaryCorpus(t *testing.T) []byte {
	t.Helper()
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocks(&buf, ds, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateFormat(t *testing.T) {
	for _, tc := range []struct {
		format string
		ok     bool
	}{
		{"tsv", true},
		{"json", true},
		{"", false},
		{"TSV", false},
		{"xml", false},
		{"tsv ", false},
	} {
		err := validateFormat(tc.format)
		if (err == nil) != tc.ok {
			t.Errorf("validateFormat(%q) = %v, want ok=%v", tc.format, err, tc.ok)
		}
	}
}

// TestPipedBinaryMatchesFile is the regression test for the sniffing
// rewrite: an MTRC v3 corpus piped through a non-seekable reader must
// produce inferences identical to reading the same corpus from a file.
func TestPipedBinaryMatchesFile(t *testing.T) {
	raw := testBinaryCorpus(t)
	path := filepath.Join(t.TempDir(), "traces.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fromFile, err := runTraces(path, testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A pipe cannot Seek: this is exactly what "-traces -" sees.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		pw.Write(raw)
		pw.Close()
	}()
	fromPipe, err := runTraceReader(pr, testConfig(t), false, mapit.SpillConfig{})
	pr.Close()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fromFile.Inferences, fromPipe.Inferences) {
		t.Errorf("piped inferences diverge from file inferences:\nfile: %+v\npipe: %+v",
			fromFile.Inferences, fromPipe.Inferences)
	}
	if fromFile.Diag != fromPipe.Diag {
		t.Errorf("diagnostics diverge:\nfile: %+v\npipe: %+v", fromFile.Diag, fromPipe.Diag)
	}
	if len(fromFile.Inferences) == 0 {
		t.Error("corpus produced no inferences; the comparison is vacuous")
	}
	if got := fromFile.Diag.Decode.TracesDecoded; got != 5 {
		t.Errorf("TracesDecoded = %d, want 5", got)
	}
}

// TestRunTraceReaderShortText checks sniffing inputs shorter than the
// 5-byte magic: a Peek error must not be treated as a read failure.
func TestRunTraceReaderShortText(t *testing.T) {
	for _, in := range []string{"", "#\n", "# x"} {
		res, err := runTraceReader(strings.NewReader(in), testConfig(t), false, mapit.SpillConfig{})
		if err != nil {
			t.Errorf("input %q: %v", in, err)
			continue
		}
		if len(res.Inferences) != 0 {
			t.Errorf("input %q: unexpected inferences %+v", in, res.Inferences)
		}
	}
}

// TestRunTraceReaderCorrupt pins the -strict contract at the command
// level: permissive runs survive a corrupt block and count it in the
// result diagnostics; strict runs fail with the typed error.
func TestRunTraceReaderCorrupt(t *testing.T) {
	raw := testBinaryCorpus(t)
	bad := bytes.Clone(raw)
	// Byte 8 is the first block's first payload byte (5-byte magic, kind
	// byte, one-byte payloadLen and traceCount varints): a record kind,
	// which 0xee is not.
	bad[8] = 0xee

	res, err := runTraceReader(bytes.NewReader(bad), testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatalf("permissive run failed: %v", err)
	}
	d := res.Diag.Decode
	if d.BlocksSkipped == 0 && d.TotalErrors() == 0 {
		t.Errorf("corruption left no trace in diagnostics: %s", d.String())
	}

	if _, err := runTraceReader(bytes.NewReader(bad), testConfig(t), true, mapit.SpillConfig{}); err == nil {
		t.Error("strict run accepted corrupt input")
	}
}

// TestRunTracesAudited runs the command-level pipeline under the
// exhaustive runtime auditor: the Fig 2 corpus must come back clean,
// and the attached report must show real checking happened.
func TestRunTracesAudited(t *testing.T) {
	raw := testBinaryCorpus(t)
	path := filepath.Join(t.TempDir(), "traces.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.Audit = &mapit.AuditChecker{Mode: mapit.AuditExhaustive}
	res, err := runTraces(path, cfg, false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("audited run carries no report")
	}
	if !res.Audit.Ok() {
		t.Fatalf("audit violations: %v", res.Audit.Violations)
	}
	if res.Audit.Checks == 0 || res.Audit.Steps == 0 {
		t.Fatalf("audit ran no checks: %s", res.Audit)
	}
	if res.Diag.AuditViolations != 0 {
		t.Fatalf("Diag.AuditViolations = %d on a clean run", res.Diag.AuditViolations)
	}

	// Unaudited output must be unaffected by auditing.
	plain, err := runTraces(path, testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Inferences, res.Inferences) || plain.Diag != res.Diag {
		t.Error("auditing changed the inference output")
	}
}

// TestParseAuditModeCLI pins the facade parser the -audit flag uses.
func TestParseAuditModeCLI(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want mapit.AuditMode
		ok   bool
	}{
		{"off", mapit.AuditOff, true},
		{"sampled", mapit.AuditSampled, true},
		{"exhaustive", mapit.AuditExhaustive, true},
		{"", 0, false},
		{"Exhaustive", 0, false},
		{"full", 0, false},
	} {
		got, err := mapit.ParseAuditMode(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseAuditMode(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseAuditMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParseMemBudget pins the -mem-budget size syntax.
func TestParseMemBudget(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"12345", 12345, true},
		{"4K", 4 << 10, true},
		{"64m", 64 << 20, true},
		{"1G", 1 << 30, true},
		{"-1", 0, false},
		{"M", 0, false},
		{"64MB", 0, false},
		{"lots", 0, false},
		{"9999999999G", 0, false},
	} {
		got, err := parseMemBudget(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseMemBudget(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseMemBudget(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRunTraceReaderSpill: a command-level run under a tiny -mem-budget
// must spill (visible in the diagnostics) and still produce the exact
// inference output of the unbudgeted run.
func TestRunTraceReaderSpill(t *testing.T) {
	raw := testBinaryCorpus(t)
	plain, err := runTraceReader(bytes.NewReader(raw), testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := runTraceReader(bytes.NewReader(raw), testConfig(t), false,
		mapit.SpillConfig{Dir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Inferences, spilled.Inferences) {
		t.Errorf("spilled inferences diverge:\nplain: %+v\nspill: %+v",
			plain.Inferences, spilled.Inferences)
	}
	if spilled.Diag.Spill.SpilledEntries == 0 || spilled.Diag.Spill.Merges == 0 {
		t.Errorf("budgeted run recorded no spill activity: %+v", spilled.Diag.Spill)
	}
	d := spilled.Diag
	d.Spill = mapit.SpillStats{}
	if plain.Diag != d {
		t.Errorf("non-spill diagnostics diverge:\nplain: %+v\nspill: %+v", plain.Diag, d)
	}
}

func TestParseLookup(t *testing.T) {
	got, err := parseLookup("109.105.98.10, 8.8.8.8 ,199.109.5.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []mapit.Addr{
		mustAddr(t, "109.105.98.10"),
		mustAddr(t, "8.8.8.8"),
		mustAddr(t, "199.109.5.1"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseLookup = %v, want %v", got, want)
	}
	if got, err := parseLookup(""); err != nil || got != nil {
		t.Errorf("parseLookup(\"\") = %v, %v", got, err)
	}
	for _, bad := range []string{"nonsense", "1.2.3", "1.2.3.4,", ",1.2.3.4", "1.2.3.4;5.6.7.8"} {
		if _, err := parseLookup(bad); err == nil {
			t.Errorf("parseLookup(%q) accepted", bad)
		}
	}
}

func mustAddr(t *testing.T, s string) mapit.Addr {
	t.Helper()
	a, err := mapit.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestPrintLookup runs the standard corpus and checks the -lookup JSON:
// inferred addresses list every matching record, uninferred addresses an
// empty list, and request order is preserved.
func TestPrintLookup(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapit.Infer(ds, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inferences) == 0 {
		t.Fatal("corpus produced no inferences")
	}
	hit := res.Inferences[0].Addr
	miss := mustAddr(t, "8.8.8.8")

	var buf bytes.Buffer
	printLookup(&buf, res, []mapit.Addr{miss, hit})

	var got []struct {
		Addr       string `json:"addr"`
		Inferences []struct {
			Addr      string `json:"addr"`
			Direction string `json:"direction"`
			Local     uint32 `json:"local_as"`
			Connected uint32 `json:"connected_as"`
		} `json:"inferences"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].Addr != miss.String() || len(got[0].Inferences) != 0 {
		t.Errorf("miss record = %+v", got[0])
	}
	want := res.ByAddr(hit)
	if got[1].Addr != hit.String() || len(got[1].Inferences) != len(want) {
		t.Fatalf("hit record = %+v, want %d inferences", got[1], len(want))
	}
	for i, inf := range want {
		g := got[1].Inferences[i]
		if g.Addr != inf.Addr.String() || g.Direction != inf.Dir.String() ||
			g.Local != uint32(inf.Local) || g.Connected != uint32(inf.Connected) {
			t.Errorf("inference[%d] = %+v, want %+v", i, g, inf)
		}
	}
}

// writeTestInputs materialises the standard corpus and RIB as files for
// command-level (run) tests, returning their paths.
func writeTestInputs(t *testing.T) (tracesPath, ribPath string) {
	t.Helper()
	dir := t.TempDir()
	tracesPath = filepath.Join(dir, "traces.txt")
	ribPath = filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(tracesPath, []byte(testTraces), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}
	return tracesPath, ribPath
}

// TestValidateFlagsLookupConflicts pins the -lookup flag-combination
// contract: explicitly setting -format, -links or -uncertain alongside
// -lookup is an error (the command would otherwise silently ignore
// them), while setting unrelated flags is not.
func TestValidateFlagsLookupConflicts(t *testing.T) {
	for _, tc := range []struct {
		set []string
		ok  bool
	}{
		{[]string{}, true},
		{[]string{"format", "links", "uncertain"}, true}, // no -lookup: nothing to conflict
		{[]string{"lookup"}, true},
		{[]string{"lookup", "stats"}, true},
		{[]string{"lookup", "workers", "strict"}, true},
		{[]string{"lookup", "format"}, false},
		{[]string{"lookup", "links"}, false},
		{[]string{"lookup", "uncertain"}, false},
		{[]string{"lookup", "format", "links", "uncertain"}, false},
	} {
		set := map[string]bool{}
		for _, n := range tc.set {
			set[n] = true
		}
		err := validateFlags(set)
		if (err == nil) != tc.ok {
			t.Errorf("validateFlags(%v) = %v, want ok=%v", tc.set, err, tc.ok)
		}
	}
}

// TestRunLookupConflictExitCode is the command-level regression test for
// the silently-ignored flag combination: -lookup with -format/-links/
// -uncertain must exit 2 with a clear message before any input is read
// (the referenced files do not exist).
func TestRunLookupConflictExitCode(t *testing.T) {
	for _, extra := range [][]string{
		{"-format", "json"},
		{"-links"},
		{"-uncertain"},
		{"-format", "tsv", "-links", "-uncertain"},
	} {
		args := append([]string{
			"-traces", "no-such-traces", "-rib", "no-such-rib",
			"-lookup", "192.0.2.1",
		}, extra...)
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2\nstderr: %s", args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), "-lookup") {
			t.Errorf("run(%v): conflict message does not name -lookup:\n%s", args, stderr.String())
		}
	}

	// The same flags without -lookup must get past flag validation (and
	// then fail with exit 1 on the missing file, not 2).
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-traces", "no-such-traces", "-rib", "no-such-rib", "-links"},
		&stdout, &stderr); code != 1 {
		t.Errorf("non-conflicting run = %d, want 1\nstderr: %s", code, stderr.String())
	}
}

// TestFailingRunWritesProfile is the regression test for the skipped
// -cpuprofile defers: a run that fails *after* profiling starts (here:
// an unreadable traces file) must still stop and flush the profile, so
// the file on disk is a complete, parseable gzip stream — not the
// truncated/empty artifact the old os.Exit path left behind.
func TestFailingRunWritesProfile(t *testing.T) {
	_, ribPath := writeTestInputs(t)
	profile := filepath.Join(t.TempDir(), "cpu.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", filepath.Join(t.TempDir(), "missing.bin"),
		"-rib", ribPath,
		"-cpuprofile", profile,
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	f, err := os.Open(profile)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("profile is not a gzip stream (truncated by a skipped defer?): %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile gzip stream is incomplete: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("profile gzip checksum: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("profile decompressed to nothing")
	}
}

// TestRunSuccessExitZero pins the happy path through run(): exit 0 and
// JSON output on stdout.
func TestRunSuccessExitZero(t *testing.T) {
	tracesPath, ribPath := writeTestInputs(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", tracesPath, "-rib", ribPath, "-format", "json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, stderr.String())
	}
	var recs []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &recs); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(recs) == 0 {
		t.Fatal("run produced no inference records")
	}
}

// TestPrintLinksJSONNeverNull is the regression test for the
// uninitialised interfaces list: every link record must carry a JSON
// array (never null), including the empty-result edge where the whole
// document must be [].
func TestPrintLinksJSONNeverNull(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapit.Infer(ds, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := printLinks(&buf, res, "json"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("links JSON leaks null:\n%s", buf.String())
	}
	var recs []struct {
		A          uint32   `json:"as_a"`
		B          uint32   `json:"as_b"`
		Interfaces []string `json:"interfaces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(recs) == 0 {
		t.Fatal("corpus produced no links; the test is vacuous")
	}
	for _, r := range recs {
		if r.Interfaces == nil || len(r.Interfaces) == 0 {
			t.Errorf("link %d-%d has no interfaces array", r.A, r.B)
		}
	}

	// Empty result: the document itself must be [], not null.
	buf.Reset()
	if err := printLinks(&buf, &mapit.Result{}, "json"); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty links document = %q, want []", got)
	}

	// Same contract for the inference list.
	buf.Reset()
	if err := printInferences(&buf, &mapit.Result{}, "json", true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty inferences document = %q, want []", got)
	}
}
