package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mapit"
)

const testTraces = `# Fig 2 style scenario
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
ark3|109.105.200.1|109.105.98.9 109.105.80.1
`

const testRIB = `rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
`

func testConfig(t *testing.T) mapit.Config {
	t.Helper()
	table, err := mapit.ReadRIB(strings.NewReader(testRIB))
	if err != nil {
		t.Fatal(err)
	}
	return mapit.Config{IP2AS: table, F: 0.5, Workers: 2}
}

func testBinaryCorpus(t *testing.T) []byte {
	t.Helper()
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocks(&buf, ds, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateFormat(t *testing.T) {
	for _, tc := range []struct {
		format string
		ok     bool
	}{
		{"tsv", true},
		{"json", true},
		{"", false},
		{"TSV", false},
		{"xml", false},
		{"tsv ", false},
	} {
		err := validateFormat(tc.format)
		if (err == nil) != tc.ok {
			t.Errorf("validateFormat(%q) = %v, want ok=%v", tc.format, err, tc.ok)
		}
	}
}

// TestPipedBinaryMatchesFile is the regression test for the sniffing
// rewrite: an MTRC v3 corpus piped through a non-seekable reader must
// produce inferences identical to reading the same corpus from a file.
func TestPipedBinaryMatchesFile(t *testing.T) {
	raw := testBinaryCorpus(t)
	path := filepath.Join(t.TempDir(), "traces.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fromFile, err := runTraces(path, testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A pipe cannot Seek: this is exactly what "-traces -" sees.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		pw.Write(raw)
		pw.Close()
	}()
	fromPipe, err := runTraceReader(pr, testConfig(t), false, mapit.SpillConfig{})
	pr.Close()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fromFile.Inferences, fromPipe.Inferences) {
		t.Errorf("piped inferences diverge from file inferences:\nfile: %+v\npipe: %+v",
			fromFile.Inferences, fromPipe.Inferences)
	}
	if fromFile.Diag != fromPipe.Diag {
		t.Errorf("diagnostics diverge:\nfile: %+v\npipe: %+v", fromFile.Diag, fromPipe.Diag)
	}
	if len(fromFile.Inferences) == 0 {
		t.Error("corpus produced no inferences; the comparison is vacuous")
	}
	if got := fromFile.Diag.Decode.TracesDecoded; got != 5 {
		t.Errorf("TracesDecoded = %d, want 5", got)
	}
}

// TestRunTraceReaderShortText checks sniffing inputs shorter than the
// 5-byte magic: a Peek error must not be treated as a read failure.
func TestRunTraceReaderShortText(t *testing.T) {
	for _, in := range []string{"", "#\n", "# x"} {
		res, err := runTraceReader(strings.NewReader(in), testConfig(t), false, mapit.SpillConfig{})
		if err != nil {
			t.Errorf("input %q: %v", in, err)
			continue
		}
		if len(res.Inferences) != 0 {
			t.Errorf("input %q: unexpected inferences %+v", in, res.Inferences)
		}
	}
}

// TestRunTraceReaderCorrupt pins the -strict contract at the command
// level: permissive runs survive a corrupt block and count it in the
// result diagnostics; strict runs fail with the typed error.
func TestRunTraceReaderCorrupt(t *testing.T) {
	raw := testBinaryCorpus(t)
	bad := bytes.Clone(raw)
	// Byte 8 is the first block's first payload byte (5-byte magic, kind
	// byte, one-byte payloadLen and traceCount varints): a record kind,
	// which 0xee is not.
	bad[8] = 0xee

	res, err := runTraceReader(bytes.NewReader(bad), testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatalf("permissive run failed: %v", err)
	}
	d := res.Diag.Decode
	if d.BlocksSkipped == 0 && d.TotalErrors() == 0 {
		t.Errorf("corruption left no trace in diagnostics: %s", d.String())
	}

	if _, err := runTraceReader(bytes.NewReader(bad), testConfig(t), true, mapit.SpillConfig{}); err == nil {
		t.Error("strict run accepted corrupt input")
	}
}

// TestRunTracesAudited runs the command-level pipeline under the
// exhaustive runtime auditor: the Fig 2 corpus must come back clean,
// and the attached report must show real checking happened.
func TestRunTracesAudited(t *testing.T) {
	raw := testBinaryCorpus(t)
	path := filepath.Join(t.TempDir(), "traces.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.Audit = &mapit.AuditChecker{Mode: mapit.AuditExhaustive}
	res, err := runTraces(path, cfg, false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("audited run carries no report")
	}
	if !res.Audit.Ok() {
		t.Fatalf("audit violations: %v", res.Audit.Violations)
	}
	if res.Audit.Checks == 0 || res.Audit.Steps == 0 {
		t.Fatalf("audit ran no checks: %s", res.Audit)
	}
	if res.Diag.AuditViolations != 0 {
		t.Fatalf("Diag.AuditViolations = %d on a clean run", res.Diag.AuditViolations)
	}

	// Unaudited output must be unaffected by auditing.
	plain, err := runTraces(path, testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Inferences, res.Inferences) || plain.Diag != res.Diag {
		t.Error("auditing changed the inference output")
	}
}

// TestParseAuditModeCLI pins the facade parser the -audit flag uses.
func TestParseAuditModeCLI(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want mapit.AuditMode
		ok   bool
	}{
		{"off", mapit.AuditOff, true},
		{"sampled", mapit.AuditSampled, true},
		{"exhaustive", mapit.AuditExhaustive, true},
		{"", 0, false},
		{"Exhaustive", 0, false},
		{"full", 0, false},
	} {
		got, err := mapit.ParseAuditMode(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseAuditMode(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseAuditMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParseMemBudget pins the -mem-budget size syntax.
func TestParseMemBudget(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"12345", 12345, true},
		{"4K", 4 << 10, true},
		{"64m", 64 << 20, true},
		{"1G", 1 << 30, true},
		{"-1", 0, false},
		{"M", 0, false},
		{"64MB", 0, false},
		{"lots", 0, false},
		{"9999999999G", 0, false},
	} {
		got, err := parseMemBudget(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseMemBudget(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseMemBudget(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRunTraceReaderSpill: a command-level run under a tiny -mem-budget
// must spill (visible in the diagnostics) and still produce the exact
// inference output of the unbudgeted run.
func TestRunTraceReaderSpill(t *testing.T) {
	raw := testBinaryCorpus(t)
	plain, err := runTraceReader(bytes.NewReader(raw), testConfig(t), false, mapit.SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := runTraceReader(bytes.NewReader(raw), testConfig(t), false,
		mapit.SpillConfig{Dir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Inferences, spilled.Inferences) {
		t.Errorf("spilled inferences diverge:\nplain: %+v\nspill: %+v",
			plain.Inferences, spilled.Inferences)
	}
	if spilled.Diag.Spill.SpilledEntries == 0 || spilled.Diag.Spill.Merges == 0 {
		t.Errorf("budgeted run recorded no spill activity: %+v", spilled.Diag.Spill)
	}
	d := spilled.Diag
	d.Spill = mapit.SpillStats{}
	if plain.Diag != d {
		t.Errorf("non-spill diagnostics diverge:\nplain: %+v\nspill: %+v", plain.Diag, d)
	}
}

func TestParseLookup(t *testing.T) {
	got, err := parseLookup("109.105.98.10, 8.8.8.8 ,199.109.5.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []mapit.Addr{
		mustAddr(t, "109.105.98.10"),
		mustAddr(t, "8.8.8.8"),
		mustAddr(t, "199.109.5.1"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseLookup = %v, want %v", got, want)
	}
	if got, err := parseLookup(""); err != nil || got != nil {
		t.Errorf("parseLookup(\"\") = %v, %v", got, err)
	}
	for _, bad := range []string{"nonsense", "1.2.3", "1.2.3.4,", ",1.2.3.4", "1.2.3.4;5.6.7.8"} {
		if _, err := parseLookup(bad); err == nil {
			t.Errorf("parseLookup(%q) accepted", bad)
		}
	}
}

func mustAddr(t *testing.T, s string) mapit.Addr {
	t.Helper()
	a, err := mapit.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestPrintLookup runs the standard corpus and checks the -lookup JSON:
// inferred addresses list every matching record, uninferred addresses an
// empty list, and request order is preserved.
func TestPrintLookup(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapit.Infer(ds, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inferences) == 0 {
		t.Fatal("corpus produced no inferences")
	}
	hit := res.Inferences[0].Addr
	miss := mustAddr(t, "8.8.8.8")

	var buf bytes.Buffer
	printLookup(&buf, res, []mapit.Addr{miss, hit})

	var got []struct {
		Addr       string `json:"addr"`
		Inferences []struct {
			Addr      string `json:"addr"`
			Direction string `json:"direction"`
			Local     uint32 `json:"local_as"`
			Connected uint32 `json:"connected_as"`
		} `json:"inferences"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].Addr != miss.String() || len(got[0].Inferences) != 0 {
		t.Errorf("miss record = %+v", got[0])
	}
	want := res.ByAddr(hit)
	if got[1].Addr != hit.String() || len(got[1].Inferences) != len(want) {
		t.Fatalf("hit record = %+v, want %d inferences", got[1], len(want))
	}
	for i, inf := range want {
		g := got[1].Inferences[i]
		if g.Addr != inf.Addr.String() || g.Direction != inf.Dir.String() ||
			g.Local != uint32(inf.Local) || g.Connected != uint32(inf.Connected) {
			t.Errorf("inference[%d] = %+v, want %+v", i, g, inf)
		}
	}
}
