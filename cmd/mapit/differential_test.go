package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"mapit/internal/serve"
)

// TestLookupMatchesServeEndpoint is the differential check holding the
// two query surfaces together: for the same corpus and addresses, the
// bytes `mapit -lookup` prints must equal the body mapitd's /v1/lookup
// returns. Both sides share the serve wire shapes and encoder settings,
// so any drift in either is a test failure here.
func TestLookupMatchesServeEndpoint(t *testing.T) {
	raw := testBinaryCorpus(t)
	dir := t.TempDir()
	tracesPath := filepath.Join(dir, "traces.bin")
	ribPath := filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(tracesPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}

	// 203.0.113.9 is deliberately absent from the corpus: the empty
	// inference list must encode identically ([]) on both surfaces.
	const addrs = "109.105.98.10,198.71.45.2,199.109.5.1,203.0.113.9"

	var stdout, stderr bytes.Buffer
	code := run([]string{"-traces", tracesPath, "-rib", ribPath, "-lookup", addrs},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("mapit -lookup exited %d: %s", code, stderr.String())
	}

	srv, err := serve.NewServer(serve.Options{Config: testConfig(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Ingest(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/lookup?addr="+addrs, nil)
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/lookup: status = %d, body %s", rec.Code, rec.Body)
	}

	if !bytes.Equal(stdout.Bytes(), rec.Body.Bytes()) {
		t.Errorf("CLI -lookup and /v1/lookup bodies diverge:\nCLI:\n%s\nHTTP:\n%s",
			stdout.Bytes(), rec.Body.Bytes())
	}
	if stdout.Len() == 0 {
		t.Error("empty lookup output; the comparison is vacuous")
	}
}
