package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mapit"
	"mapit/internal/trace"
)

// TestValidateWindowFlags pins the -window/-step flag contract.
func TestValidateWindowFlags(t *testing.T) {
	for _, tc := range []struct {
		name         string
		set          []string
		window, step time.Duration
		ok           bool
	}{
		{"no window flags", nil, 0, 0, true},
		{"pair", []string{"window", "step"}, time.Minute, 10 * time.Second, true},
		{"window alone", []string{"window"}, time.Minute, 0, false},
		{"step alone", []string{"step"}, 0, 10 * time.Second, false},
		{"sub-second window", []string{"window", "step"}, 500 * time.Millisecond, time.Second, false},
		{"fractional step", []string{"window", "step"}, time.Minute, 1500 * time.Millisecond, false},
		{"zero step", []string{"window", "step"}, time.Minute, 0, false},
		{"lookup conflict", []string{"window", "step", "lookup"}, time.Minute, time.Second, false},
		{"mem-budget conflict", []string{"window", "step", "mem-budget"}, time.Minute, time.Second, false},
		{"spill-dir conflict", []string{"window", "step", "spill-dir"}, time.Minute, time.Second, false},
	} {
		set := map[string]bool{}
		for _, n := range tc.set {
			set[n] = true
		}
		err := validateWindowFlags(set, tc.window, tc.step)
		if (err == nil) != tc.ok {
			t.Errorf("%s: validateWindowFlags = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// timedTestCorpus stamps the standard five-trace corpus so the first
// four traces land early and the last (ark3's intra-AS probe) lands a
// window later: replaying with -window 120s -step 100s leaves only the
// final trace resident at the last boundary.
func timedTestCorpus(t *testing.T) *mapit.Dataset {
	t.Helper()
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{100, 110, 120, 130, 250}
	if len(ds.Traces) != len(times) {
		t.Fatalf("corpus has %d traces, fixture expects %d", len(ds.Traces), len(times))
	}
	for i := range ds.Traces {
		ds.Traces[i].Time = times[i]
	}
	return ds
}

// TestRunWindowReplay drives the command end to end over a timestamped
// MTRC v4 corpus: the final window position must print exactly what a
// batch run over the still-resident tail prints, and -stats must
// report each advance's churn line.
func TestRunWindowReplay(t *testing.T) {
	dir := t.TempDir()
	ds := timedTestCorpus(t)
	var bin bytes.Buffer
	if err := trace.WriteBinaryBlocksV4(&bin, &trace.Dataset{Traces: ds.Traces}, 2); err != nil {
		t.Fatal(err)
	}
	tracesPath := filepath.Join(dir, "traces.bin")
	if err := os.WriteFile(tracesPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ribPath := filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", tracesPath, "-rib", ribPath,
		"-window", "120s", "-step", "100s",
		"-format", "json", "-stats", "-audit", "exhaustive",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("windowed run = %d, want 0\nstderr: %s", code, stderr.String())
	}
	for _, want := range []string{"window advance now=200", "window advance now=300", "window: advances="} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}

	// Batch reference: only the t=250 trace is inside (180, 300].
	tailPath := filepath.Join(dir, "tail.txt")
	lines := strings.Split(strings.TrimSpace(testTraces), "\n")
	if err := os.WriteFile(tailPath, []byte(lines[len(lines)-1]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var batchOut, batchErr bytes.Buffer
	if code := run([]string{
		"-traces", tailPath, "-rib", ribPath, "-format", "json",
	}, &batchOut, &batchErr); code != 0 {
		t.Fatalf("batch reference run = %d\nstderr: %s", code, batchErr.String())
	}
	if stdout.String() != batchOut.String() {
		t.Fatalf("windowed output differs from batch over the resident tail:\nwindow: %s\nbatch: %s",
			stdout.String(), batchOut.String())
	}
}

// TestRunWindowReplayUnsorted: a corpus whose timestamps regress must
// fail the replay with a clear error (JSONL can carry unsorted times;
// MTRC v4 cannot).
func TestRunWindowReplayUnsorted(t *testing.T) {
	dir := t.TempDir()
	ds := timedTestCorpus(t)
	ds.Traces[4].Time = 50 // regress after 130
	var buf bytes.Buffer
	if err := mapit.WriteTracesJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	tracesPath := filepath.Join(dir, "traces.jsonl")
	if err := os.WriteFile(tracesPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ribPath := filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", tracesPath, "-rib", ribPath, "-window", "60s", "-step", "30s",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("unsorted replay = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "not sorted") {
		t.Fatalf("stderr missing sort error:\n%s", stderr.String())
	}
}

// TestRunWindowReplayEmptyCorpus: a windowed run over an empty corpus
// fails cleanly instead of printing a phantom result.
func TestRunWindowReplayEmptyCorpus(t *testing.T) {
	dir := t.TempDir()
	tracesPath := filepath.Join(dir, "traces.txt")
	if err := os.WriteFile(tracesPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ribPath := filepath.Join(dir, "rib.txt")
	if err := os.WriteFile(ribPath, []byte(testRIB), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", tracesPath, "-rib", ribPath, "-window", "60s", "-step", "30s",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("empty windowed run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no traces") {
		t.Fatalf("stderr missing empty-corpus error:\n%s", stderr.String())
	}
}

// TestRunWindowFlagConflictExitCode: -window with a conflicting flag
// exits 2 before any input is read.
func TestRunWindowFlagConflictExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-traces", "no-such", "-rib", "no-such",
		"-window", "60s", "-step", "30s", "-mem-budget", "64M",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("conflicting windowed run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-window does not combine") {
		t.Fatalf("stderr missing conflict message:\n%s", stderr.String())
	}
}
